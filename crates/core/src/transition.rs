//! Transition-graph mining (paper §V-B, Eq. 3).
//!
//! From (possibly partially sampled) faulty-run traces, build a directed
//! graph over instrumentation locations with association-rule confidence
//!
//! ```text
//! µ(ei, ej) = o(ei → ej) / o(ei)
//! ```
//!
//! where `o(ei → ej)` counts how often `ej` immediately follows `ei` in
//! a sampled trace. Low-confidence edges are dropped.

use concrete::Location;
use std::collections::BTreeMap;

/// A directed edge with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Target location.
    pub to: Location,
    /// `o(ei → ej)`.
    pub count: usize,
    /// Eq. 3 confidence.
    pub confidence: f64,
}

/// The mined dynamic transition graph.
#[derive(Debug, Clone, Default)]
pub struct TransitionGraph {
    /// Outgoing edges per location (sorted keys for determinism).
    edges: BTreeMap<Location, Vec<Edge>>,
    /// Occurrence count per location.
    occurrences: BTreeMap<Location, usize>,
}

/// Mining thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MineConfig {
    /// Minimum Eq. 3 confidence for an edge to be kept.
    pub min_confidence: f64,
    /// Minimum absolute occurrence count for an edge.
    pub min_support: usize,
}

impl Default for MineConfig {
    fn default() -> Self {
        MineConfig {
            min_confidence: 0.02,
            min_support: 1,
        }
    }
}

impl TransitionGraph {
    /// Mines the graph from event traces (the paper mines faulty
    /// executions; pass correct traces too when the failure point is
    /// deep and sampling is sparse).
    ///
    /// Counting is per *log file* (trace), as in the paper's Eq. 3: a
    /// location or adjacent pair contributes at most once per trace.
    /// (Counting raw record occurrences instead would let hot loop
    /// locations dilute the confidence of their rare-but-real outgoing
    /// transitions below any threshold.)
    pub fn mine<'a>(
        traces: impl IntoIterator<Item = &'a Vec<Location>>,
        config: MineConfig,
    ) -> TransitionGraph {
        let mut pair_counts: BTreeMap<(Location, Location), usize> = BTreeMap::new();
        let mut occurrences: BTreeMap<Location, usize> = BTreeMap::new();
        for trace in traces {
            let locs: std::collections::BTreeSet<&Location> = trace.iter().collect();
            for loc in locs {
                *occurrences.entry(loc.clone()).or_default() += 1;
            }
            let pairs: std::collections::BTreeSet<(&Location, &Location)> =
                trace.windows(2).map(|w| (&w[0], &w[1])).collect();
            for (a, b) in pairs {
                *pair_counts.entry((a.clone(), b.clone())).or_default() += 1;
            }
        }
        let mut edges: BTreeMap<Location, Vec<Edge>> = BTreeMap::new();
        for ((from, to), count) in pair_counts {
            let o_from = occurrences[&from];
            let confidence = count as f64 / o_from as f64;
            if confidence >= config.min_confidence && count >= config.min_support {
                edges.entry(from).or_default().push(Edge {
                    to,
                    count,
                    confidence,
                });
            }
        }
        for out in edges.values_mut() {
            out.sort_by(|a, b| {
                b.confidence
                    .partial_cmp(&a.confidence)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.to.cmp(&b.to))
            });
        }
        TransitionGraph { edges, occurrences }
    }

    /// Outgoing edges of `loc`, highest confidence first.
    pub fn successors(&self, loc: &Location) -> &[Edge] {
        self.edges.get(loc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All nodes (locations with any occurrence).
    pub fn nodes(&self) -> impl Iterator<Item = &Location> {
        self.occurrences.keys()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.occurrences.len()
    }

    /// Total number of kept edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// Number of traces containing `loc`.
    pub fn occurrences(&self, loc: &Location) -> usize {
        self.occurrences.get(loc).copied().unwrap_or(0)
    }

    /// Nodes with no incoming edges — candidate program entry points
    /// (paper §V-B step 1).
    pub fn entry_nodes(&self) -> Vec<Location> {
        let mut has_incoming: BTreeMap<&Location, bool> = BTreeMap::new();
        for loc in self.occurrences.keys() {
            has_incoming.insert(loc, false);
        }
        for (from, outs) in &self.edges {
            for e in outs {
                if e.to != *from {
                    has_incoming.insert(&e.to, true);
                }
            }
        }
        has_incoming
            .into_iter()
            .filter(|&(_loc, inc)| !inc)
            .map(|(loc, _inc)| loc.clone())
            .collect()
    }

    /// A copy of the graph keeping only each node's `k` highest-
    /// confidence outgoing edges. Skeleton construction runs on the
    /// `top_k(1)` view so it follows the *modal* execution chain, while
    /// detours search the full graph — this is what pushes rarely-taken
    /// high-score locations off the skeleton and into detours, as in the
    /// paper's polymorph/thttpd analyses.
    #[must_use]
    pub fn top_k(&self, k: usize) -> TransitionGraph {
        let mut edges = self.edges.clone();
        for out in edges.values_mut() {
            out.truncate(k);
        }
        TransitionGraph {
            edges,
            occurrences: self.occurrences.clone(),
        }
    }

    /// The subgraph induced on `keep`: only kept nodes and the edges
    /// between them survive. Used to restrict skeleton construction to
    /// mainline locations while detours search the full graph.
    #[must_use]
    pub fn induced(&self, keep: &std::collections::BTreeSet<Location>) -> TransitionGraph {
        let mut edges = BTreeMap::new();
        for (from, outs) in &self.edges {
            if !keep.contains(from) {
                continue;
            }
            let kept: Vec<Edge> = outs
                .iter()
                .filter(|e| keep.contains(&e.to))
                .cloned()
                .collect();
            if !kept.is_empty() {
                edges.insert(from.clone(), kept);
            }
        }
        let occurrences = self
            .occurrences
            .iter()
            .filter(|(l, _)| keep.contains(*l))
            .map(|(l, n)| (l.clone(), *n))
            .collect();
        TransitionGraph { edges, occurrences }
    }

    /// Breadth-first shortest path `from → to` (inclusive), if any.
    pub fn shortest_path(&self, from: &Location, to: &Location) -> Option<Vec<Location>> {
        if from == to {
            return Some(vec![from.clone()]);
        }
        let mut prev: BTreeMap<Location, Location> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from.clone()]);
        let mut seen: std::collections::BTreeSet<Location> = [from.clone()].into();
        while let Some(cur) = queue.pop_front() {
            for e in self.successors(&cur) {
                if seen.insert(e.to.clone()) {
                    prev.insert(e.to.clone(), cur.clone());
                    if &e.to == to {
                        let mut path = vec![to.clone()];
                        let mut at = to.clone();
                        while let Some(p) = prev.get(&at) {
                            path.push(p.clone());
                            at = p.clone();
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(e.to.clone());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(name: &str) -> Location {
        Location::enter(name)
    }

    fn mine(traces: &[Vec<Location>]) -> TransitionGraph {
        TransitionGraph::mine(traces.iter(), MineConfig::default())
    }

    #[test]
    fn counts_and_confidence() {
        let traces = vec![
            vec![l("a"), l("b"), l("c")],
            vec![l("a"), l("b")],
            vec![l("a"), l("c")],
        ];
        let g = mine(&traces);
        assert_eq!(g.occurrences(&l("a")), 3);
        let succ = g.successors(&l("a"));
        assert_eq!(succ.len(), 2);
        assert_eq!(succ[0].to, l("b"));
        assert!((succ[0].confidence - 2.0 / 3.0).abs() < 1e-9);
        assert!((succ[1].confidence - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn low_confidence_edges_dropped() {
        let mut traces = vec![vec![l("a"), l("b")]; 99];
        traces.push(vec![l("a"), l("z")]);
        let g = TransitionGraph::mine(
            traces.iter(),
            MineConfig {
                min_confidence: 0.05,
                min_support: 1,
            },
        );
        let succ = g.successors(&l("a"));
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].to, l("b"));
    }

    #[test]
    fn entry_nodes_have_no_incoming() {
        let traces = vec![vec![l("main"), l("f"), l("g")]];
        let g = mine(&traces);
        assert_eq!(g.entry_nodes(), vec![l("main")]);
    }

    #[test]
    fn self_loop_does_not_hide_entry() {
        let traces = vec![vec![l("main"), l("main"), l("f")]];
        let g = mine(&traces);
        assert!(g.entry_nodes().contains(&l("main")));
    }

    #[test]
    fn shortest_path_bfs() {
        let traces = vec![vec![l("a"), l("b"), l("c"), l("d")], vec![l("a"), l("d")]];
        let g = mine(&traces);
        // Direct a -> d edge beats the 3-hop route.
        assert_eq!(g.shortest_path(&l("a"), &l("d")).unwrap().len(), 2);
        assert_eq!(g.shortest_path(&l("a"), &l("a")).unwrap().len(), 1);
        assert!(g.shortest_path(&l("d"), &l("a")).is_none());
    }

    #[test]
    fn edge_and_node_counts() {
        let traces = vec![vec![l("a"), l("b"), l("a"), l("b")]];
        let g = mine(&traces);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2); // a->b and b->a
    }
}
