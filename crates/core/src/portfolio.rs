//! Parallel candidate-path portfolio execution (DESIGN.md §9).
//!
//! Sequentially, StatSym attempts ranked candidate paths one at a time
//! and stops at the first verified fault. When the first hit sits deep
//! in the ranking — or earlier attempts burn their whole budget before
//! failing — that loop is embarrassingly serial. The portfolio executor
//! runs the same attempts concurrently on [`std::thread::scope`]
//! workers while preserving the sequential result bit for bit:
//!
//! * **Work queue.** A shared [`AtomicUsize`] hands candidates out in
//!   rank order; each worker claims the next unclaimed index.
//! * **Cancellation.** Every candidate gets its own [`AtomicBool`]
//!   token, polled by the engine at each scheduling decision. When a
//!   candidate verifies the fault, the lowest found rank so far becomes
//!   the *watermark*: tokens strictly above the watermark are tripped
//!   and ranks above it are no longer handed out. Candidates at or
//!   below the watermark are never cancelled, so every attempt the
//!   sequential loop would have made still runs to natural completion.
//! * **Deterministic selection.** The winner is the lowest-ranked
//!   candidate whose attempt verified the fault — the same candidate
//!   the sequential loop stops at, carrying the identical
//!   [`FoundVulnerability`] (the engine is deterministic, and shared
//!   solver-cache verdicts never change an engine's exploration; see
//!   `solver::SharedCache`). The reported attempt list covers exactly
//!   ranks `0..=winner`, in rank order, as the sequential loop reports.
//! * **Shared solver cache.** All workers publish Sat/Unsat verdicts
//!   into one sharded [`SharedCache`] keyed by structural constraint
//!   hashes, so overlapping path prefixes across candidates are solved
//!   once per portfolio instead of once per attempt.
//!
//! Recorders are single-threaded by design, so workers run detached
//! and the main thread replays each reported attempt's spans, counters,
//! and events in rank order after the join — a portfolio trace
//! reconciles with its report exactly like a sequential one. Work done
//! by cancelled or losing attempts is reported separately under
//! `portfolio.*` metrics and never pollutes the engine counters.

use crate::candidate::CandidatePath;
use crate::guidance::GuidedHook;
use crate::pipeline::{CandidateAttempt, StatSymConfig};
use sir::Module;
use solver::{SharedCache, SharedCacheStats, SolverStats};
use statsym_telemetry::{names, FieldValue, Recorder};
use symex::{outcome_label, record_run_telemetry, Engine, EngineConfig, EngineReport};
use symex::{FoundVulnerability, RunOutcome, SchedulerKind};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Result of one portfolio execution, shaped exactly like the
/// corresponding fields of a sequential `StatSymReport`.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// Attempts over ranks `0..=winner` (all ranks when nothing was
    /// found), in rank order — the same set the sequential loop reports.
    pub attempts: Vec<CandidateAttempt>,
    /// The verified vulnerable path, if any candidate found it.
    pub found: Option<FoundVulnerability>,
    /// Rank of the winning candidate.
    pub candidate_used: Option<usize>,
    /// Shared solver-cache counters for the whole portfolio.
    pub cache: SharedCacheStats,
}

/// Runs the ranked candidates as a parallel portfolio and returns the
/// sequential-equivalent outcome. See the module docs for the protocol.
pub fn run_portfolio(
    module: &Module,
    paths: &[CandidatePath],
    config: &StatSymConfig,
    pins: &concrete::InputMap,
    rec: &dyn Recorder,
) -> PortfolioOutcome {
    let n = paths.len();
    let workers = config.workers.min(n).max(1);

    let span = rec.span_open(names::PORTFOLIO);
    rec.counter_add(names::PORTFOLIO_WORKERS, workers as u64);

    // Four shards per worker keeps shard-lock collisions rare without
    // bloating the cache for small portfolios.
    let shared = Arc::new(SharedCache::new(workers * 4));
    let next = AtomicUsize::new(0);
    // Lowest rank verified so far; `n` means "none yet". Only ranks
    // strictly above this watermark are ever cancelled or skipped.
    let best = AtomicUsize::new(n);
    let tokens: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let slots: Vec<Mutex<Option<EngineReport>>> = (0..n).map(|_| Mutex::new(None)).collect();

    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let rank = next.fetch_add(1, Ordering::Relaxed);
                if rank >= n {
                    break;
                }
                if config.cancel_on_found && rank > best.load(Ordering::Acquire) {
                    // A better-ranked candidate already won; every rank
                    // this worker could still claim is above it too.
                    break;
                }
                let engine_config = EngineConfig {
                    scheduler: SchedulerKind::Priority,
                    ..config.engine
                };
                let hook = GuidedHook::new(paths[rank].clone(), config.guidance);
                let mut engine = Engine::with_hook(module, engine_config, Box::new(hook));
                engine.set_shared_cache(shared.clone());
                if config.cancel_on_found {
                    engine.set_cancel_token(tokens[rank].clone());
                }
                for (name, value) in pins {
                    engine.pin_input(name.clone(), value.clone());
                }
                let report = engine.run();
                if report.outcome.is_found() {
                    let mut cur = best.load(Ordering::Acquire);
                    while rank < cur {
                        match best.compare_exchange_weak(
                            cur,
                            rank,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => break,
                            Err(now) => cur = now,
                        }
                    }
                    if config.cancel_on_found {
                        let watermark = best.load(Ordering::Acquire);
                        for token in tokens.iter().skip(watermark + 1) {
                            token.store(true, Ordering::Release);
                        }
                    }
                }
                *slots[rank].lock().expect("portfolio worker panicked") = Some(report);
            });
        }
    });

    let reports: Vec<Option<EngineReport>> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("portfolio worker panicked"))
        .collect();
    let winner = reports
        .iter()
        .position(|r| r.as_ref().is_some_and(|r| r.outcome.is_found()));
    let limit = winner.unwrap_or(n);

    let mut attempts = Vec::new();
    let mut found = None;
    let mut cancelled: u64 = 0;
    for (rank, slot) in reports.into_iter().enumerate() {
        if rank <= limit {
            // Ranks at or below the winner are never cancelled or
            // skipped, so the attempt always completed.
            let report = slot.expect("candidates at or below the winning rank run to completion");
            replay_attempt(rec, rank, paths[rank].len(), &report);
            attempts.push(CandidateAttempt {
                index: rank,
                path_len: paths[rank].len(),
                found: report.outcome.is_found(),
                wall_time: report.wall_time,
                stats: report.stats,
            });
            if let RunOutcome::Found(f) = report.outcome {
                found = Some(*f);
            }
        } else if let Some(report) = slot {
            // Overshoot: an attempt the sequential loop would never have
            // started. Its work is visible only under portfolio.* so the
            // engine counters still reconcile with the reported attempts.
            let was_cancelled = matches!(
                report.outcome,
                RunOutcome::Exhausted(symex::ExhaustionReason::Cancelled)
            );
            cancelled += u64::from(was_cancelled);
            rec.event(
                names::PORTFOLIO_ATTEMPT,
                &[
                    ("index", FieldValue::from(rank)),
                    ("outcome", FieldValue::from(outcome_label(&report.outcome))),
                    ("steps", FieldValue::from(report.stats.exec.steps)),
                ],
            );
        }
    }

    rec.counter_add(names::PORTFOLIO_CANCELLED, cancelled);
    let cache = shared.stats();
    rec.counter_add(names::PORTFOLIO_CACHE_HITS, cache.hits);
    rec.counter_add(names::PORTFOLIO_CACHE_MISSES, cache.misses);
    rec.counter_add(names::PORTFOLIO_CACHE_STORES, cache.stores);
    rec.counter_add(names::PORTFOLIO_CACHE_CONTENTION, cache.contention);
    rec.counter_add(names::PORTFOLIO_CACHE_ENTRIES, cache.entries);
    rec.span_close(span);

    PortfolioOutcome {
        attempts,
        found,
        candidate_used: winner,
        cache,
    }
}

/// Replays one reported attempt into the main-thread recorder with the
/// same span/event shape the sequential loop produces live: a
/// `candidate.attempt` span wrapping an `engine.run` span whose counters
/// mirror the attempt's stats, followed by a `candidate.result` event.
fn replay_attempt(rec: &dyn Recorder, rank: usize, path_len: usize, report: &EngineReport) {
    if !rec.enabled() {
        return;
    }
    let attempt_span = rec.span_open(names::CANDIDATE_ATTEMPT);
    let run_span = rec.span_open(names::ENGINE_RUN);
    rec.tick(report.stats.exec.steps);
    // Each portfolio attempt ran on a fresh solver, so its stats are
    // already deltas — no prior snapshot to subtract.
    record_run_telemetry(rec, &report.stats, &SolverStats::default(), &report.outcome);
    rec.span_close(run_span);
    rec.span_close(attempt_span);
    rec.event(
        names::CANDIDATE_RESULT,
        &[
            ("index", FieldValue::from(rank)),
            ("path_len", FieldValue::from(path_len)),
            ("found", FieldValue::from(report.outcome.is_found())),
            (
                "paths_explored",
                FieldValue::from(report.stats.paths_explored),
            ),
        ],
    );
}
