//! Parallel candidate-path portfolio execution (DESIGN.md §9).
//!
//! Sequentially, StatSym attempts ranked candidate paths one at a time
//! and stops at the first verified fault. When the first hit sits deep
//! in the ranking — or earlier attempts burn their whole budget before
//! failing — that loop is embarrassingly serial. The portfolio executor
//! runs the same attempts concurrently on [`std::thread::scope`]
//! workers while preserving the sequential result bit for bit:
//!
//! * **Work queue.** A shared [`AtomicUsize`] hands candidates out in
//!   rank order; each worker claims the next unclaimed index.
//! * **Cancellation.** Every candidate gets its own [`AtomicBool`]
//!   token, polled by the engine at each scheduling decision. When a
//!   candidate verifies the fault, the lowest found rank so far becomes
//!   the *watermark*: tokens strictly above the watermark are tripped
//!   and ranks above it are no longer handed out. Candidates at or
//!   below the watermark are never cancelled, so every attempt the
//!   sequential loop would have made still runs to natural completion.
//! * **Deterministic selection.** The winner is the lowest-ranked
//!   candidate whose attempt verified the fault — the same candidate
//!   the sequential loop stops at, carrying the identical
//!   [`FoundVulnerability`] (the engine is deterministic, and shared
//!   solver-cache verdicts never change an engine's exploration; see
//!   `solver::SharedCache`). The reported attempt list covers exactly
//!   ranks `0..=winner`, in rank order, as the sequential loop reports.
//! * **Shared solver cache.** All workers publish Sat/Unsat verdicts
//!   into one sharded [`SharedCache`] keyed by structural constraint
//!   hashes, so overlapping path prefixes across candidates are solved
//!   once per portfolio instead of once per attempt. Gated by
//!   [`StatSymConfig::share_cache`]: turning it off makes every
//!   worker's solver *work* counters independent of scheduling, which
//!   is what the byte-reproducible-trace tests rely on.
//!
//! **Concurrent recording (DESIGN.md §10).** Each worker owns a private
//! [`BufferedRecorder`] and the engine records into it natively — the
//! same spans, events, counters, and histograms a sequential attempt
//! would record, including per-callsite solver profiles and anything a
//! cancelled run did before it stopped. After the join, the main thread
//! splices the buffers into the real recorder in rank order via
//! [`Recorder::merge_buffer`]: ranks up to the winner merge verbatim
//! (so the trace reconciles with the reported attempts exactly like a
//! sequential trace), while overshoot attempts — work the sequential
//! loop would never have started — merge under the
//! `portfolio.overshoot.` prefix so they never pollute the engine's own
//! counters.

use crate::candidate::CandidatePath;
use crate::guidance::GuidedHook;
use crate::pipeline::{CandidateAttempt, StatSymConfig};
use sir::Module;
use solver::{QueryCache, SharedCache, SharedCacheStats, UnsatCache};
use statsym_telemetry::{names, BufferedRecorder, FieldValue, Recorder, TraceBuffer};
use symex::{outcome_label, Engine, EngineConfig, EngineReport};
use symex::{FoundVulnerability, RunOutcome, SchedulerKind};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Result of one portfolio execution, shaped exactly like the
/// corresponding fields of a sequential `StatSymReport`.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// Attempts over ranks `0..=winner` (all ranks when nothing was
    /// found), in rank order — the same set the sequential loop reports.
    pub attempts: Vec<CandidateAttempt>,
    /// The verified vulnerable path, if any candidate found it.
    pub found: Option<FoundVulnerability>,
    /// Rank of the winning candidate.
    pub candidate_used: Option<usize>,
    /// Shared solver-cache counters for the whole portfolio (all zero
    /// when [`StatSymConfig::share_cache`] is off).
    pub cache: SharedCacheStats,
}

/// Everything a worker ships back to the main thread for one rank.
struct WorkerDone {
    report: EngineReport,
    /// The worker's private trace, if the run was recorded.
    trace: Option<TraceBuffer>,
    /// For cancelled runs: wall time from the cancel token tripping to
    /// the engine actually stopping.
    cancel_latency: Option<Duration>,
}

/// Runs the ranked candidates as a parallel portfolio and returns the
/// sequential-equivalent outcome. See the module docs for the protocol.
pub fn run_portfolio(
    module: &Module,
    paths: &[CandidatePath],
    config: &StatSymConfig,
    pins: &concrete::InputMap,
    rec: &dyn Recorder,
) -> PortfolioOutcome {
    // Four shards per worker keeps shard-lock collisions rare without
    // bloating the cache for small portfolios.
    let workers = config.workers.min(paths.len()).max(1);
    let shared = Arc::new(SharedCache::new(workers * 4));
    run_portfolio_with_cache(module, paths, config, pins, rec, shared)
}

/// [`run_portfolio`] with the shared verdict cache supplied by the
/// caller instead of constructed internally. The cache is advisory —
/// any conforming [`QueryCache`] (including fault-injecting wrappers
/// that drop lookups or publishes) yields the same exploration and the
/// same outcome; only the traffic counters differ.
pub fn run_portfolio_with_cache(
    module: &Module,
    paths: &[CandidatePath],
    config: &StatSymConfig,
    pins: &concrete::InputMap,
    rec: &dyn Recorder,
    shared: Arc<dyn QueryCache + Send + Sync>,
) -> PortfolioOutcome {
    let n = paths.len();
    let workers = config.workers.min(n).max(1);
    // Optional cross-worker unsat-core/model sharing: sound but able to
    // substitute a different valid witness, hence opt-in (see
    // `StatSymConfig::share_unsat_cache`).
    let unsat = config
        .share_unsat_cache
        .then(|| Arc::new(UnsatCache::default()));
    // Two-level budget split (see `pipeline::split_worker_budget`):
    // surplus workers beyond the candidate count run inside each
    // engine as state workers when the pipeline opted in.
    let state_workers = if config.auto_split_workers && config.engine.state_workers == 0 {
        crate::pipeline::split_worker_budget(config.workers, n).1
    } else {
        config.engine.state_workers
    };

    let span = rec.span_open(names::PORTFOLIO);
    rec.counter_add(names::PORTFOLIO_WORKERS, workers as u64);
    let next = AtomicUsize::new(0);
    // Lowest rank verified so far; `n` means "none yet". Only ranks
    // strictly above this watermark are ever cancelled or skipped.
    let best = AtomicUsize::new(n);
    let tokens: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
    // When each token first tripped — the start point of cancel latency.
    let trips: Vec<Mutex<Option<Instant>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let slots: Vec<Mutex<Option<WorkerDone>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let record = rec.enabled();
    let clock_mode = rec.clock_mode();

    // Oversubscribing the host never helps: logical workers beyond the
    // available parallelism just interleave on the same cores, racing
    // to re-solve queries a published verdict would have answered. The
    // protocol is schedule-independent, so clamping the *spawned*
    // threads changes wall time only — `workers` stays the logical
    // budget for reporting and budget splits.
    let spawn = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(workers)
        .min(workers)
        .max(1);
    thread::scope(|s| {
        for _ in 0..spawn {
            s.spawn(|| loop {
                let rank = next.fetch_add(1, Ordering::Relaxed);
                if rank >= n {
                    break;
                }
                if config.cancel_on_found && rank > best.load(Ordering::Acquire) {
                    // A better-ranked candidate already won; every rank
                    // this worker could still claim is above it too.
                    break;
                }
                let engine_config = EngineConfig {
                    scheduler: SchedulerKind::Priority,
                    state_workers,
                    candidate_rank: rank as u32 + 1,
                    ..config.engine
                };
                // The worker's private recorder: the engine records into
                // it exactly as it would into the main-thread sink.
                let wrec = record.then(|| BufferedRecorder::new(clock_mode));
                let attempt_span = wrec.as_ref().map(|w| w.span_open(names::CANDIDATE_ATTEMPT));
                let report = {
                    let hook = GuidedHook::new(paths[rank].clone(), config.guidance);
                    let mut engine = Engine::with_hook(module, engine_config, Box::new(hook));
                    if let Some(w) = wrec.as_ref() {
                        engine.set_recorder(w);
                    }
                    if config.share_cache {
                        engine.set_shared_cache(shared.clone());
                    }
                    if let Some(uc) = &unsat {
                        engine.set_unsat_cache(uc.clone());
                    }
                    if config.cancel_on_found {
                        engine.set_cancel_token(tokens[rank].clone());
                    }
                    for (name, value) in pins {
                        engine.pin_input(name.clone(), value.clone());
                    }
                    engine.run()
                };
                let cancel_latency = if matches!(
                    report.outcome,
                    RunOutcome::Exhausted(symex::ExhaustionReason::Cancelled)
                ) {
                    trips[rank]
                        .lock()
                        .expect("portfolio worker panicked")
                        .map(|at| at.elapsed())
                } else {
                    None
                };
                if report.outcome.is_found() {
                    let mut cur = best.load(Ordering::Acquire);
                    while rank < cur {
                        match best.compare_exchange_weak(
                            cur,
                            rank,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => break,
                            Err(now) => cur = now,
                        }
                    }
                    if config.cancel_on_found {
                        let watermark = best.load(Ordering::Acquire);
                        for (token, trip) in tokens.iter().zip(&trips).skip(watermark + 1) {
                            // Stamp the trip time before the token so a
                            // cancelled worker always finds it set.
                            let mut at = trip.lock().expect("portfolio worker panicked");
                            if at.is_none() {
                                *at = Some(Instant::now());
                                token.store(true, Ordering::Release);
                            }
                        }
                    }
                }
                if let Some(w) = wrec.as_ref() {
                    w.span_close(attempt_span.expect("span opened iff recording"));
                    w.event(
                        names::CANDIDATE_RESULT,
                        &[
                            ("index", FieldValue::from(rank)),
                            ("path_len", FieldValue::from(paths[rank].len())),
                            ("found", FieldValue::from(report.outcome.is_found())),
                            (
                                "paths_explored",
                                FieldValue::from(report.stats.paths_explored),
                            ),
                            ("steps", FieldValue::from(report.stats.exec.steps)),
                        ],
                    );
                    // Same record the sequential loop emits; overshoot
                    // buffers splice under the rename prefix, so only
                    // sequential-equivalent attempts feed calibration.
                    crate::pipeline::record_calibration(
                        w,
                        rank,
                        paths[rank].score,
                        paths[rank].len(),
                        &report.stats,
                        report.outcome.is_found(),
                    );
                }
                *slots[rank].lock().expect("portfolio worker panicked") = Some(WorkerDone {
                    report,
                    trace: wrec.map(BufferedRecorder::finish),
                    cancel_latency,
                });
            });
        }
    });

    let reports: Vec<Option<WorkerDone>> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("portfolio worker panicked"))
        .collect();
    let winner = reports
        .iter()
        .position(|r| r.as_ref().is_some_and(|r| r.report.outcome.is_found()));
    let limit = winner.unwrap_or(n);

    let mut attempts = Vec::new();
    let mut found = None;
    let mut cancelled: u64 = 0;
    for (rank, slot) in reports.into_iter().enumerate() {
        if rank <= limit {
            // Ranks at or below the winner are never cancelled or
            // skipped, so the attempt always completed. Its buffer
            // merges verbatim: the trace shows exactly what the
            // sequential loop would have recorded live.
            let done = slot.expect("candidates at or below the winning rank run to completion");
            if let Some(buf) = &done.trace {
                rec.merge_buffer(buf, None);
            }
            attempts.push(CandidateAttempt {
                index: rank,
                path_len: paths[rank].len(),
                found: done.report.outcome.is_found(),
                wall_time: done.report.wall_time,
                stats: done.report.stats,
            });
            if let RunOutcome::Found(f) = done.report.outcome {
                found = Some(*f);
            }
        } else if let Some(done) = slot {
            // Overshoot: an attempt the sequential loop would never have
            // started. Its full trace is preserved, but every span,
            // event, and metric lands under portfolio.overshoot.* so the
            // engine counters still reconcile with the reported attempts.
            let was_cancelled = matches!(
                done.report.outcome,
                RunOutcome::Exhausted(symex::ExhaustionReason::Cancelled)
            );
            cancelled += u64::from(was_cancelled);
            rec.event(
                names::PORTFOLIO_ATTEMPT,
                &[
                    ("index", FieldValue::from(rank)),
                    (
                        "outcome",
                        FieldValue::from(outcome_label(&done.report.outcome)),
                    ),
                    ("steps", FieldValue::from(done.report.stats.exec.steps)),
                ],
            );
            if let Some(buf) = &done.trace {
                rec.merge_buffer(buf, Some(names::PORTFOLIO_OVERSHOOT_PREFIX));
            }
            if let Some(d) = done.cancel_latency {
                rec.observe_wall(names::PORTFOLIO_CANCEL_LATENCY_US, d);
            }
        }
    }

    rec.counter_add(names::PORTFOLIO_CANCELLED, cancelled);
    let cache = shared.stats();
    rec.counter_add(names::PORTFOLIO_CACHE_HITS, cache.hits);
    rec.counter_add(names::PORTFOLIO_CACHE_MISSES, cache.misses);
    rec.counter_add(names::PORTFOLIO_CACHE_STORES, cache.stores);
    // Zero-vs-absent convention: contention is an exact atomic count
    // (see `SharedCache`), and an uncontended run records *no* counter
    // rather than an explicit 0 — `TraceSummary::counter_opt` lets
    // consumers tell "never contended" apart from "counter vanished".
    if cache.contention > 0 {
        rec.counter_add(names::PORTFOLIO_CACHE_CONTENTION, cache.contention);
    }
    rec.counter_add(names::PORTFOLIO_CACHE_ENTRIES, cache.entries);
    rec.span_close(span);

    PortfolioOutcome {
        attempts,
        found,
        candidate_used: winner,
        cache,
    }
}
