//! StatSym core — the paper's contribution: statistics-guided symbolic
//! execution for vulnerable path discovery (DSN 2017).
//!
//! The pipeline has four stages, mirroring Figure 3 of the paper:
//!
//! 1. **Log corpus** ([`corpus`]) — sampled function-boundary logs from
//!    correct and faulty executions (produced by `concrete::Monitor`).
//! 2. **Predicate construction and ranking** ([`predicate`]) — for every
//!    (location, variable) pair, the threshold predicate that optimally
//!    separates faulty from correct runs (Eq. 1), scored by
//!    `|P(x|C) − P(x|F)|` (Eq. 2).
//! 3. **Candidate path construction** ([`transition`], [`skeleton`],
//!    [`detour`], [`candidate`]) — association-rule mining of location
//!    transitions (Eq. 3), a maximum-average-score acyclic *skeleton*
//!    from program entry to the failure point, greedy *detours* to
//!    high-score predicates off the skeleton, and their ranked joins.
//! 4. **Statistics-guided symbolic execution** ([`guidance`],
//!    [`pipeline`]) — a `symex::EventHook` implementing the paper's
//!    inter-function (τ-hop) and intra-function (predicate constraint)
//!    guidance, plus the driver that iterates candidate paths until the
//!    vulnerable path is verified.
//!
//! # Example
//!
//! ```no_run
//! use statsym_core::pipeline::{StatSym, StatSymConfig};
//!
//! # fn get_logs() -> Vec<concrete::ExecutionLog> { vec![] }
//! let program = minic::parse_program("fn main() { return; }")?;
//! let module = sir::lower(&program)?;
//! let logs = get_logs(); // monitored correct + faulty runs
//! let statsym = StatSym::new(StatSymConfig::default());
//! let report = statsym.run(&module, &logs);
//! if let Some(found) = report.found {
//!     println!("vulnerable path: {} events", found.trace.len());
//! }
//! # Ok::<(), minic::Error>(())
//! ```

pub mod candidate;
pub mod compound;
pub mod corpus;
pub mod detour;
pub mod guidance;
pub mod multi;
pub mod pipeline;
pub mod portfolio;
pub mod predicate;
pub mod skeleton;
pub mod transition;

pub use candidate::{CandidatePath, CandidateSet, PathNode};
pub use compound::{CompoundPredicate, CompoundSet};
pub use corpus::LogCorpus;
pub use detour::{Detour, DetourKind};
pub use guidance::{GuidanceConfig, GuidedHook};
pub use multi::MultiReport;
pub use pipeline::{split_worker_budget, AnalysisReport, StatSym, StatSymConfig, StatSymReport};
pub use portfolio::{run_portfolio_with_cache, PortfolioOutcome};
pub use predicate::{PredOp, Predicate, PredicateSet};
pub use skeleton::Skeleton;
pub use transition::TransitionGraph;
