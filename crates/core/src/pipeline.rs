//! The end-to-end StatSym pipeline (paper Figure 3 / Figure 5):
//! sampled logs → predicates → candidate paths → guided symbolic
//! execution, iterating candidates until the vulnerable path is
//! verified.

use crate::candidate::{CandidateConfig, CandidatePath, CandidateSet};
use crate::corpus::LogCorpus;
use crate::detour::{find_detours, DetourConfig};
use crate::guidance::{GuidanceConfig, GuidedHook};
use crate::predicate::PredicateSet;
use crate::skeleton::{Skeleton, SkeletonConfig};
use crate::transition::{MineConfig, TransitionGraph};
use concrete::{ExecutionLog, Location};
use sir::Module;
use statsym_telemetry::{names, FieldValue, Recorder, Span, NOOP};
use std::time::Duration;
use symex::{Engine, EngineConfig, EngineStats, FoundVulnerability, SchedulerKind};

/// Configuration for the whole pipeline.
#[derive(Debug, Clone, Copy)]
pub struct StatSymConfig {
    /// Transition mining thresholds (Eq. 3).
    pub mine: MineConfig,
    /// Skeleton search limits.
    pub skeleton: SkeletonConfig,
    /// Detour search parameters.
    pub detour: DetourConfig,
    /// Candidate generation parameters.
    pub candidate: CandidateConfig,
    /// Guidance parameters (τ, lookahead).
    pub guidance: GuidanceConfig,
    /// Per-candidate symbolic execution budget. The scheduler is forced
    /// to [`SchedulerKind::Priority`]; `time_budget` plays the role of
    /// the paper's 15-minute per-candidate timeout.
    pub engine: EngineConfig,
    /// Worker threads for the guided execution stage. `1` (the default)
    /// attempts candidates sequentially in rank order; `> 1` runs the
    /// ranked candidates as a parallel portfolio (see [`crate::portfolio`])
    /// with results identical to the sequential path.
    pub workers: usize,
    /// In portfolio mode, cancel in-flight attempts on worse-ranked
    /// candidates once a better-ranked candidate verifies the fault.
    /// Has no effect at `workers == 1`.
    pub cancel_on_found: bool,
    /// In portfolio mode, share Sat/Unsat solver verdicts between
    /// workers through one sharded cache. Never changes what a worker
    /// explores — only how much solver work it spends — so turn it off
    /// when solver-work counters must be independent of scheduling
    /// (e.g. byte-reproducible trace comparisons). Has no effect at
    /// `workers == 1`.
    pub share_cache: bool,
    /// In portfolio mode, additionally share unsat cores and reusable
    /// models between workers through one `solver::UnsatCache`.
    /// Verdicts stay sound (superset models are verified before being
    /// served), but a served model can be a *different* valid witness
    /// than local search would produce, so this is off by default: the
    /// portfolio's sequential-equivalence guarantee extends to the
    /// reported triggering input. Turn it on when throughput matters
    /// more than witness reproducibility.
    pub share_unsat_cache: bool,
    /// Let the pipeline move surplus portfolio workers inside the
    /// engines as state workers via [`split_worker_budget`] — the cure
    /// for the portfolio plateau when candidates are fewer than
    /// workers. Off by default: the work-stealing executor explores in
    /// its own deterministic order rather than hook-priority order, so
    /// traces and witnesses can differ from the plain sequential run
    /// (found faults remain sound and replayable). An explicit
    /// `engine.state_workers` setting is always respected and
    /// disables the automatic split.
    pub auto_split_workers: bool,
}

/// Splits a total worker budget between the two parallelism levels:
/// candidate-portfolio workers (outer) and per-engine state workers
/// (inner, the work-stealing executor; see
/// `symex::EngineConfig::state_workers`).
///
/// Candidates get priority — they are coarser-grained and perfectly
/// independent — and only the surplus budget moves inside the engines:
/// with fewer candidates than workers each engine gets
/// `total / candidates` state workers. An inner share of 1 is reported
/// as `0` (the sequential legacy executor) because a one-worker steal
/// run only adds scheduling overhead.
///
/// ```
/// use statsym_core::pipeline::split_worker_budget;
/// assert_eq!(split_worker_budget(8, 1), (1, 8)); // all budget inside
/// assert_eq!(split_worker_budget(8, 3), (3, 2)); // surplus moves in
/// assert_eq!(split_worker_budget(2, 5), (2, 0)); // candidates first
/// assert_eq!(split_worker_budget(1, 4), (1, 0)); // fully sequential
/// ```
pub fn split_worker_budget(total: usize, candidates: usize) -> (usize, usize) {
    let total = total.max(1);
    let cand = total.min(candidates.max(1));
    let state = total / cand;
    (cand, if state > 1 { state } else { 0 })
}

/// Spearman rank correlation between candidate rank order (the slice
/// index: rank 0 first) and per-attempt cost, in per-mille (ρ × 1000,
/// rounded). A positive value means the statistical ranking predicted
/// cost well — better-ranked candidates really were cheaper to attempt.
/// Tied costs get average ranks. `None` when fewer than two attempts or
/// when every cost ties (the correlation is undefined, and the
/// zero-vs-absent convention says emit nothing rather than a fake 0).
///
/// ```
/// use statsym_core::pipeline::rank_cost_corr_milli;
/// assert_eq!(rank_cost_corr_milli(&[10, 20, 30]), Some(1000));
/// assert_eq!(rank_cost_corr_milli(&[30, 20, 10]), Some(-1000));
/// assert_eq!(rank_cost_corr_milli(&[5, 5]), None);
/// assert_eq!(rank_cost_corr_milli(&[5]), None);
/// ```
pub fn rank_cost_corr_milli(costs: &[u64]) -> Option<i64> {
    let n = costs.len();
    if n < 2 {
        return None;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| costs[i]);
    let mut cost_rank = vec![0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && costs[idx[j + 1]] == costs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            cost_rank[k] = avg;
        }
        i = j + 1;
    }
    // Candidate ranks are 0..n-1 with no ties; average cost ranks keep
    // the same mean, so one centered pass computes the correlation.
    let mean = (n as f64 - 1.0) / 2.0;
    let (mut num, mut dx, mut dy) = (0f64, 0f64, 0f64);
    for (r, &cr) in cost_rank.iter().enumerate() {
        let x = r as f64 - mean;
        let y = cr - mean;
        num += x * y;
        dx += x * x;
        dy += y * y;
    }
    if dy == 0.0 {
        return None;
    }
    Some((num / (dx * dy).sqrt() * 1000.0).round() as i64)
}

/// Emits one `calib.candidate` record: the statistical prediction for a
/// candidate (1-based rank, milli-scaled score, path length) next to
/// what its attempt actually cost (steps, forks, solver search nodes,
/// and — wall-clock traces only — solver µs) and whether it verified
/// the fault. Consumed by `statsym-inspect calib`/`explain` and the
/// JSON report's calibration section.
pub(crate) fn record_calibration(
    rec: &dyn Recorder,
    rank: usize,
    score: f64,
    path_len: usize,
    stats: &EngineStats,
    found: bool,
) {
    if !rec.enabled() {
        return;
    }
    let mut fields = vec![
        ("rank", FieldValue::from(rank as u64 + 1)),
        ("score_milli", FieldValue::from((score * 1000.0) as i64)),
        ("path_len", FieldValue::from(path_len)),
        ("steps", FieldValue::from(stats.exec.steps)),
        ("forks", FieldValue::from(stats.exec.forks)),
        ("snodes", FieldValue::from(stats.solver.nodes)),
    ];
    if rec.clock_mode() == statsym_telemetry::ClockMode::Wall {
        fields.push(("solver_us", FieldValue::from(stats.solver.query_us)));
    }
    fields.push(("found", FieldValue::from(u64::from(found))));
    rec.event(names::CALIB_CANDIDATE, &fields);
}

impl Default for StatSymConfig {
    fn default() -> Self {
        StatSymConfig {
            mine: MineConfig::default(),
            skeleton: SkeletonConfig::default(),
            detour: DetourConfig::default(),
            candidate: CandidateConfig::default(),
            guidance: GuidanceConfig::default(),
            engine: EngineConfig {
                scheduler: SchedulerKind::Priority,
                time_budget: Some(Duration::from_secs(900)),
                ..EngineConfig::default()
            },
            workers: 1,
            cancel_on_found: true,
            share_cache: true,
            share_unsat_cache: false,
            auto_split_workers: false,
        }
    }
}

/// Content fingerprint of a pipeline configuration for run manifests.
///
/// Scheduling-only knobs (worker counts, cancellation, budget
/// splitting, steal tuning) are canonicalized before hashing: they
/// change how fast a run executes, never what it computes, so the same
/// workload at 1 and 8 workers carries the same fingerprint and
/// cross-run analytics can group those runs together. Semantic knobs —
/// thresholds, budgets, cache sharing (which changes solver-work
/// counters), chaos injection — all perturb the fingerprint.
pub fn config_fingerprint(config: &StatSymConfig) -> String {
    let mut canon = *config;
    canon.workers = 1;
    canon.cancel_on_found = true;
    canon.auto_split_workers = false;
    let engine_defaults = EngineConfig::default();
    canon.engine.state_workers = 0;
    canon.engine.steal_slice = engine_defaults.steal_slice;
    canon.engine.steal_seed = engine_defaults.steal_seed;
    statsym_telemetry::manifest::fnv64_hex(format!("{canon:?}").as_bytes())
}

/// Output of the statistical analysis module (stages 1–3).
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Usable correct runs.
    pub n_correct: usize,
    /// Usable faulty runs.
    pub n_faulty: usize,
    /// Ranked predicates (Table V).
    pub predicates: PredicateSet,
    /// Mined transition graph.
    pub graph: TransitionGraph,
    /// Candidate paths, skeleton, detours (Figures 7/9, Tables II/III).
    pub candidates: Option<CandidateSet>,
    /// Inferred failure point.
    pub failure_location: Option<Location>,
    /// Wall-clock time of statistical analysis (Tables II/III).
    pub analysis_time: Duration,
}

impl AnalysisReport {
    /// Number of detours found (Tables II/III).
    pub fn n_detours(&self) -> usize {
        self.candidates.as_ref().map_or(0, |c| c.detours.len())
    }

    /// Number of candidate paths (Figure 7).
    pub fn n_candidates(&self) -> usize {
        self.candidates.as_ref().map_or(0, |c| c.paths.len())
    }
}

/// One guided symbolic execution attempt on one candidate path.
#[derive(Debug, Clone)]
pub struct CandidateAttempt {
    /// Candidate index (rank order).
    pub index: usize,
    /// Candidate length in nodes.
    pub path_len: usize,
    /// Whether the vulnerable path was verified on this candidate.
    pub found: bool,
    /// Wall-clock time of the attempt.
    pub wall_time: Duration,
    /// Engine counters for the attempt.
    pub stats: EngineStats,
}

/// The full pipeline report.
#[derive(Debug)]
pub struct StatSymReport {
    /// Statistical analysis results.
    pub analysis: AnalysisReport,
    /// Guided execution attempts, in candidate order.
    pub attempts: Vec<CandidateAttempt>,
    /// The verified vulnerable path, if found.
    pub found: Option<FoundVulnerability>,
    /// Index of the successful candidate.
    pub candidate_used: Option<usize>,
    /// Total guided symbolic execution time (Tables II/III).
    pub symex_time: Duration,
}

impl StatSymReport {
    /// Total wall-clock time: statistical analysis + symbolic execution
    /// (Table IV).
    pub fn total_time(&self) -> Duration {
        self.analysis.analysis_time + self.symex_time
    }

    /// Total paths explored across attempts (Table IV).
    pub fn total_paths_explored(&self) -> u64 {
        self.attempts.iter().map(|a| a.stats.paths_explored).sum()
    }
}

/// The StatSym framework.
#[derive(Debug, Clone, Default)]
pub struct StatSym {
    config: StatSymConfig,
}

impl StatSym {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: StatSymConfig) -> StatSym {
        StatSym { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &StatSymConfig {
        &self.config
    }

    /// Runs the statistical analysis module only (stages 1–3).
    pub fn analyze(&self, logs: &[ExecutionLog]) -> AnalysisReport {
        self.analyze_traced(logs, &NOOP)
    }

    /// Like [`StatSym::analyze`] with a telemetry recorder: each stage
    /// (log preprocessing, predicate construction, transition mining,
    /// skeleton/detour/candidate search) runs under its own span.
    /// `analysis_time` is the wall-clock duration of the outer span.
    pub fn analyze_traced(&self, logs: &[ExecutionLog], rec: &dyn Recorder) -> AnalysisReport {
        let outer = Span::start(rec, names::PIPELINE_ANALYZE);

        let sp = Span::start(rec, names::PHASE_LOG_PREPROCESS);
        let corpus = LogCorpus::build(logs);
        let _ = sp.finish();

        let predicates = PredicateSet::build_traced(&corpus, rec);

        // Mine faulty traces (paper §V-B); fall back to the full corpus
        // when sparse sampling disconnects the graph.
        let sp = Span::start(rec, names::PHASE_TRANSITION_MINING);
        let graph = TransitionGraph::mine(corpus.faulty_traces.iter(), self.config.mine);
        let _ = sp.finish();
        let failure_location = corpus.failure_location.clone();

        let candidates = failure_location.as_ref().and_then(|failure| {
            // Skeleton: best-scoring among the BFS-shortest entry→failure
            // paths (§VI-B). Falls back to a graph including correct
            // traces when heavy sampling disconnects the faulty graph.
            let sp = Span::start(rec, names::PHASE_SKELETON);
            let skeleton = Skeleton::build(&graph, &predicates, failure, self.config.skeleton)
                .or_else(|| {
                    let full = TransitionGraph::mine(
                        corpus.faulty_traces.iter().chain(&corpus.correct_traces),
                        self.config.mine,
                    );
                    Skeleton::build(&full, &predicates, failure, self.config.skeleton)
                });
            let _ = sp.finish();
            let skeleton = skeleton?;
            let sp = Span::start(rec, names::PHASE_DETOURS);
            let detours = find_detours(&graph, &predicates, &skeleton, self.config.detour);
            let _ = sp.finish();
            let sp = Span::start(rec, names::PHASE_CANDIDATES);
            let set = CandidateSet::build(skeleton, detours, &predicates, self.config.candidate);
            let _ = sp.finish();
            Some(set)
        });

        AnalysisReport {
            n_correct: corpus.n_correct,
            n_faulty: corpus.n_faulty,
            predicates,
            graph,
            candidates,
            failure_location,
            analysis_time: outer.finish(),
        }
    }

    /// Runs the full pipeline: analysis, then statistics-guided symbolic
    /// execution over ranked candidate paths until a vulnerable path is
    /// verified (Figure 5 step (e)).
    pub fn run(&self, module: &Module, logs: &[ExecutionLog]) -> StatSymReport {
        self.run_traced(module, logs, &NOOP)
    }

    /// Like [`StatSym::run`] with a telemetry recorder threaded through
    /// the whole pipeline, including each per-candidate engine run.
    pub fn run_traced(
        &self,
        module: &Module,
        logs: &[ExecutionLog],
        rec: &dyn Recorder,
    ) -> StatSymReport {
        let analysis = self.analyze_traced(logs, rec);
        self.run_with_analysis_traced(module, analysis, rec)
    }

    /// Runs guided symbolic execution from a precomputed analysis.
    pub fn run_with_analysis(&self, module: &Module, analysis: AnalysisReport) -> StatSymReport {
        self.run_with_analysis_traced(module, analysis, &NOOP)
    }

    /// Like [`StatSym::run_with_analysis`] with a telemetry recorder:
    /// each candidate attempt runs under a `candidate.attempt` span and
    /// reports a `candidate.result` event. `symex_time` is the
    /// wall-clock duration of the outer `pipeline.symex` span.
    pub fn run_with_analysis_traced(
        &self,
        module: &Module,
        analysis: AnalysisReport,
        rec: &dyn Recorder,
    ) -> StatSymReport {
        self.run_with_analysis_pinned_traced(module, analysis, &concrete::InputMap::new(), rec)
    }

    /// Like [`StatSym::run_with_analysis_traced`] but pins the given
    /// inputs to their concrete values on every candidate attempt (the
    /// paper configures required program options for both engines).
    pub fn run_with_analysis_pinned_traced(
        &self,
        module: &Module,
        analysis: AnalysisReport,
        pins: &concrete::InputMap,
        rec: &dyn Recorder,
    ) -> StatSymReport {
        let outer = Span::start(rec, names::PIPELINE_SYMEX);

        // Borrow the ranked candidates in place; only the path actually
        // attempted is cloned (into its GuidedHook), never the full list.
        let paths: &[CandidatePath] = analysis
            .candidates
            .as_ref()
            .map_or(&[][..], |c| c.paths.as_slice());

        let (attempts, found, candidate_used) = if self.config.workers > 1 && paths.len() > 1 {
            let out = crate::portfolio::run_portfolio(module, paths, &self.config, pins, rec);
            (out.attempts, out.found, out.candidate_used)
        } else {
            self.run_sequential(module, paths, pins, rec)
        };

        // Ranking-calibration gauges, derived from the attempts the
        // sequential loop would have made (overshoot never counts):
        // which rank won, and how well rank order predicted step cost.
        if rec.enabled() {
            if let Some(w) = candidate_used {
                rec.gauge_max(names::CALIB_WINNER_RANK, w as i64 + 1);
            }
            let costs: Vec<u64> = attempts.iter().map(|a| a.stats.exec.steps).collect();
            if let Some(corr) = rank_cost_corr_milli(&costs) {
                rec.gauge_max(names::CALIB_RANK_COST_CORR, corr);
            }
        }

        StatSymReport {
            analysis,
            attempts,
            found,
            candidate_used,
            symex_time: outer.finish(),
        }
    }

    /// The sequential (workers == 1) candidate loop: attempts candidates
    /// in rank order, stopping at the first verified fault.
    fn run_sequential(
        &self,
        module: &Module,
        paths: &[CandidatePath],
        pins: &concrete::InputMap,
        rec: &dyn Recorder,
    ) -> (
        Vec<CandidateAttempt>,
        Option<FoundVulnerability>,
        Option<usize>,
    ) {
        let mut attempts = Vec::new();
        let mut found = None;
        let mut candidate_used = None;
        // `share_unsat_cache` applies to the sequential loop too: ranked
        // candidates overlap heavily, and an unsat core learned on one
        // attempt prunes the next attempt's search outright.
        let unsat = self
            .config
            .share_unsat_cache
            .then(|| std::sync::Arc::new(solver::UnsatCache::default()));

        // The sequential loop runs when the portfolio level has nothing
        // to parallelize (one candidate, or workers == 1). Under
        // `auto_split_workers`, a worker budget that cannot be spent
        // across candidates moves inside the engine as state workers —
        // this is what breaks the portfolio's scaling plateau on
        // single-candidate workloads.
        let state_workers = if self.config.auto_split_workers
            && self.config.engine.state_workers == 0
            && self.config.workers > 1
        {
            split_worker_budget(self.config.workers, paths.len()).1
        } else {
            self.config.engine.state_workers
        };
        for (index, path) in paths.iter().enumerate() {
            let engine_config = EngineConfig {
                scheduler: SchedulerKind::Priority,
                state_workers,
                candidate_rank: index as u32 + 1,
                ..self.config.engine
            };
            let path_len = path.len();
            let sp = Span::start(rec, names::CANDIDATE_ATTEMPT);
            let hook = GuidedHook::new(path.clone(), self.config.guidance);
            let mut engine = Engine::with_hook(module, engine_config, Box::new(hook));
            engine.set_recorder(rec);
            if let Some(uc) = &unsat {
                engine.set_unsat_cache(uc.clone());
            }
            for (name, value) in pins {
                engine.pin_input(name.clone(), value.clone());
            }
            let report = engine.run();
            let _ = sp.finish();
            let hit = report.outcome.is_found();
            rec.event(
                names::CANDIDATE_RESULT,
                &[
                    ("index", FieldValue::from(index)),
                    ("path_len", FieldValue::from(path_len)),
                    ("found", FieldValue::from(hit)),
                    (
                        "paths_explored",
                        FieldValue::from(report.stats.paths_explored),
                    ),
                    ("steps", FieldValue::from(report.stats.exec.steps)),
                ],
            );
            record_calibration(rec, index, path.score, path_len, &report.stats, hit);
            attempts.push(CandidateAttempt {
                index,
                path_len,
                found: hit,
                wall_time: report.wall_time,
                stats: report.stats,
            });
            if let symex::RunOutcome::Found(f) = report.outcome {
                found = Some(*f);
                candidate_used = Some(index);
                break;
            }
        }

        (attempts, found, candidate_used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concrete::{run_logged, InputMap, InputValue};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A miniature polymorph: option handling noise plus an unchecked
    /// copy of a string input into a fixed 6-byte stack buffer.
    const SRC: &str = r#"
        global track: int = 0;
        fn helper_a(x: int) -> int { track = track + 1; return x + 1; }
        fn helper_b(x: int) -> int { track = track + 2; return x * 2; }
        fn convert(s: str) {
            let b: buf[6];
            let i: int = 0;
            while (char_at(s, i) != 0) {
                buf_set(b, i, char_at(s, i));
                i = i + 1;
            }
        }
        fn main() {
            let m: int = input_int("mode");
            let s: str = input_str("name", 12);
            if (m > 0) { print(helper_a(m)); } else { print(helper_b(m)); }
            convert(s);
        }
    "#;

    #[test]
    fn config_fingerprint_ignores_scheduling_but_not_semantics() {
        let base = StatSymConfig::default();
        let fp = config_fingerprint(&base);
        assert_eq!(fp.len(), 16, "fnv64 hex digest");

        // Deployment-scale knobs: fingerprint-invariant.
        let mut scaled = base;
        scaled.workers = 8;
        scaled.cancel_on_found = false;
        scaled.auto_split_workers = true;
        scaled.engine.state_workers = 4;
        scaled.engine.steal_slice = 128;
        scaled.engine.steal_seed = 99;
        assert_eq!(config_fingerprint(&scaled), fp);

        // Semantic knobs: each changes the fingerprint.
        let mut budget = base;
        budget.engine.max_steps = 12_345;
        assert_ne!(config_fingerprint(&budget), fp);
        let mut cache = base;
        cache.share_cache = !cache.share_cache;
        assert_ne!(config_fingerprint(&cache), fp);
        let mut chaos = base;
        chaos.engine.panic_after = Some(10);
        assert_ne!(config_fingerprint(&chaos), fp);
    }

    fn module() -> Module {
        sir::lower(&minic::parse_program(SRC).unwrap()).unwrap()
    }

    fn gen_logs(module: &Module, n_each: usize, sampling: f64, seed: u64) -> Vec<ExecutionLog> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut logs = Vec::new();
        let mut n_correct = 0;
        let mut n_faulty = 0;
        let mut attempt = 0u64;
        while (n_correct < n_each || n_faulty < n_each) && attempt < 10_000 {
            attempt += 1;
            let want_faulty = n_faulty < n_each && (n_correct >= n_each || rng.random_bool(0.5));
            let len = if want_faulty {
                rng.random_range(7..=12)
            } else {
                rng.random_range(0..=6)
            };
            let name: Vec<u8> = (0..len).map(|_| rng.random_range(b'a'..=b'z')).collect();
            let mode = rng.random_range(-5..=5);
            let inputs: InputMap = [
                ("mode".to_string(), InputValue::Int(mode)),
                ("name".to_string(), InputValue::Str(name)),
            ]
            .into_iter()
            .collect();
            let run = run_logged(module, &inputs, sampling, seed ^ attempt).unwrap();
            if run.log.is_faulty() {
                if n_faulty < n_each {
                    n_faulty += 1;
                    logs.push(run.log);
                }
            } else if n_correct < n_each {
                n_correct += 1;
                logs.push(run.log);
            }
        }
        logs
    }

    #[test]
    fn analysis_finds_length_predicate_and_failure_point() {
        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 42);
        let statsym = StatSym::default();
        let analysis = statsym.analyze(&logs);
        assert_eq!(analysis.n_correct, 30);
        assert_eq!(analysis.n_faulty, 30);
        assert_eq!(analysis.failure_location, Some(Location::enter("convert")));
        // The top supported predicate bounds len(s FUNCPARAM) around 6.5.
        let top = analysis
            .predicates
            .ranked
            .iter()
            .find(|p| !p.is_degenerate())
            .expect("supported predicate");
        assert!(
            top.render().contains("len(s FUNCPARAM)"),
            "{}",
            top.render()
        );
        assert!(
            top.threshold > 6.0 && top.threshold < 7.0,
            "{}",
            top.threshold
        );
        assert!(analysis.candidates.is_some());
    }

    #[test]
    fn full_pipeline_discovers_vulnerable_path_and_input() {
        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 7);
        let statsym = StatSym::default();
        let report = statsym.run(&m, &logs);
        let found = report.found.as_ref().expect("vulnerable path found");
        assert_eq!(found.fault.func, "convert");
        assert!(matches!(
            found.fault.kind,
            concrete::FaultKind::BufferOverflow { cap: 6, .. }
        ));
        // Replay the generated input on the concrete VM.
        let vm = concrete::Vm::new(&m, concrete::VmConfig::default());
        let replay = vm.run(&found.inputs).unwrap();
        assert!(replay.outcome.is_fault());
        assert_eq!(report.candidate_used, Some(0), "first candidate suffices");
        assert!(report.total_time() >= report.symex_time);
    }

    #[test]
    fn pipeline_works_under_partial_sampling() {
        let m = module();
        let logs = gen_logs(&m, 40, 0.5, 99);
        let statsym = StatSym::default();
        let report = statsym.run(&m, &logs);
        assert!(
            report.found.is_some(),
            "found nothing; attempts: {:?}",
            report
                .attempts
                .iter()
                .map(|a| (a.index, a.found))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn guided_explores_fewer_paths_than_pure_bfs() {
        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 3);
        let statsym = StatSym::default();
        let report = statsym.run(&m, &logs);
        assert!(report.found.is_some());
        let guided_paths = report.total_paths_explored();

        let mut pure = Engine::new(&m, EngineConfig::default());
        let pure_report = pure.run();
        assert!(pure_report.outcome.is_found());
        assert!(
            guided_paths <= pure_report.stats.paths_explored,
            "guided {} vs pure {}",
            guided_paths,
            pure_report.stats.paths_explored
        );
    }

    /// A decoy candidate whose single node injects a structurally
    /// unsatisfiable predicate at the fault function's entry: every state
    /// reaching `convert` is suspended, and the resumed guidance-off
    /// search needs more steps than the real candidate's guided run
    /// (measured: 102 vs 91 on this fixture), so under a budget between
    /// the two the decoy deterministically exhausts without finding.
    fn decoy_candidate() -> CandidatePath {
        use crate::candidate::PathNode;
        use crate::predicate::{PredOp, Predicate};
        use concrete::{Measure, VarId, VarRole};
        CandidatePath {
            nodes: vec![PathNode {
                loc: Location::enter("convert"),
                predicates: vec![Predicate {
                    loc: Location::enter("convert"),
                    var: VarId::new("track", VarRole::Global, Measure::Value),
                    op: PredOp::Gt,
                    threshold: 1e9,
                    score: 1.0,
                    support: 5,
                }],
            }],
            score: 9.0,
        }
    }

    /// Asserts a portfolio report carries the exact result and per-attempt
    /// metadata of its sequential counterpart. Wall times and solver
    /// *work* counters (search nodes, cache hits, peak memory) are
    /// legitimately different — shared verdicts skip local search — but
    /// everything exploration-visible must match.
    fn assert_matches_sequential(seq: &StatSymReport, par: &StatSymReport, label: &str) {
        assert_eq!(par.candidate_used, seq.candidate_used, "{label}");
        match (&seq.found, &par.found) {
            (None, None) => {}
            (Some(s), Some(p)) => {
                assert_eq!(p.fault, s.fault, "{label}");
                assert_eq!(p.inputs, s.inputs, "{label}");
                assert_eq!(p.trace, s.trace, "{label}");
                assert_eq!(p.rendered_constraints, s.rendered_constraints, "{label}");
                assert_eq!(p.depth, s.depth, "{label}");
            }
            (s, p) => panic!("{label}: found mismatch: seq {s:?} vs par {p:?}"),
        }
        assert_eq!(par.attempts.len(), seq.attempts.len(), "{label}");
        for (p, s) in par.attempts.iter().zip(&seq.attempts) {
            let at = format!("{label}, attempt {}", s.index);
            assert_eq!(p.index, s.index, "{at}");
            assert_eq!(p.path_len, s.path_len, "{at}");
            assert_eq!(p.found, s.found, "{at}");
            assert_eq!(p.stats.exec, s.stats.exec, "{at}");
            assert_eq!(p.stats.paths_completed, s.stats.paths_completed, "{at}");
            assert_eq!(p.stats.paths_explored, s.stats.paths_explored, "{at}");
            assert_eq!(p.stats.states_created, s.stats.states_created, "{at}");
            assert_eq!(p.stats.left_suspended, s.stats.left_suspended, "{at}");
            assert_eq!(p.stats.peak_live_states, s.stats.peak_live_states, "{at}");
            assert_eq!(p.stats.solver.queries, s.stats.solver.queries, "{at}");
            assert_eq!(p.stats.solver.sat, s.stats.solver.sat, "{at}");
            assert_eq!(p.stats.solver.unsat, s.stats.solver.unsat, "{at}");
            assert_eq!(p.stats.solver.unknown, s.stats.solver.unknown, "{at}");
        }
    }

    #[test]
    fn portfolio_matches_sequential_when_first_candidate_wins() {
        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 7);
        let analysis = StatSym::default().analyze(&logs);
        let seq = StatSym::default().run_with_analysis(&m, analysis.clone());
        assert_eq!(seq.candidate_used, Some(0));
        for workers in [2, 8] {
            let cfg = StatSymConfig {
                workers,
                ..StatSymConfig::default()
            };
            let par = StatSym::new(cfg).run_with_analysis(&m, analysis.clone());
            assert_matches_sequential(&seq, &par, &format!("workers={workers}"));
        }
    }

    #[test]
    fn portfolio_matches_sequential_on_late_ranked_winner() {
        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 7);
        let mut analysis = StatSym::default().analyze(&logs);
        let cs = analysis.candidates.as_mut().unwrap();
        cs.paths.insert(0, decoy_candidate());
        cs.paths.insert(0, decoy_candidate());

        // Between the guided run's 91 steps and the decoys' 102: decoys
        // exhaust, the real candidate (rank 2) finds. Step budgets are
        // deterministic, so every worker count sees identical outcomes.
        let base = StatSymConfig::default();
        let cfg = |workers| StatSymConfig {
            workers,
            engine: EngineConfig {
                max_steps: 95,
                ..base.engine
            },
            ..base
        };

        let seq = StatSym::new(cfg(1)).run_with_analysis(&m, analysis.clone());
        assert_eq!(seq.candidate_used, Some(2), "decoys must not win");
        assert_eq!(seq.attempts.len(), 3);
        assert!(!seq.attempts[0].found && !seq.attempts[1].found);
        for workers in [2, 8] {
            let par = StatSym::new(cfg(workers)).run_with_analysis(&m, analysis.clone());
            assert_matches_sequential(&seq, &par, &format!("workers={workers}"));
        }
    }

    #[test]
    fn lineage_traces_merge_to_valid_forest_and_stay_deterministic() {
        use statsym_telemetry::{parse_trace_strict, render_trace, Clock, MemRecorder};

        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 7);
        let base = StatSymConfig::default();
        let cfg = |workers| StatSymConfig {
            workers,
            engine: EngineConfig {
                lineage: true,
                ..base.engine
            },
            ..base
        };
        let analysis = StatSym::new(cfg(1)).analyze(&logs);
        let record = |workers| {
            let rec = MemRecorder::new(Clock::steps());
            let _ = StatSym::new(cfg(workers)).run_with_analysis_traced(&m, analysis.clone(), &rec);
            render_trace(&rec.finish())
        };

        // Under the step clock, a workers-1 lineage trace is
        // byte-reproducible run to run — the emission layer must not
        // introduce any nondeterminism.
        let seq = record(1);
        assert_eq!(seq, record(1), "workers-1 lineage trace must be stable");
        let events = parse_trace_strict(&seq).expect("sequential lineage trace is strict-valid");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, statsym_telemetry::TraceEvent::State { .. })),
            "lineage run must emit state events"
        );

        // A 4-worker portfolio merge must still satisfy every lineage
        // rule the strict parser enforces: dense remapped ids,
        // introduction before transition, no orphaned forks.
        let par = record(4);
        parse_trace_strict(&par).expect("merged portfolio lineage trace is strict-valid");
    }

    #[test]
    fn budget_killed_runs_are_byte_identical_across_worker_counts() {
        use statsym_telemetry::{
            lineage_op, parse_trace_strict, render_trace, Clock, MemRecorder, TraceEvent,
        };
        use symex::Budget;

        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 7);
        // The real candidate needs 91 steps on this fixture: a 60-step
        // budget kills every attempt mid-state, so no candidate wins and
        // every rank runs to its (deterministic) budget trip.
        let base = StatSymConfig::default();
        let cfg = |workers| StatSymConfig {
            workers,
            engine: EngineConfig {
                lineage: true,
                budget: Budget {
                    max_steps: Some(60),
                    ..Budget::default()
                },
                ..base.engine
            },
            ..base
        };
        let analysis = StatSym::new(cfg(1)).analyze(&logs);
        let record = |workers| {
            let rec = MemRecorder::new(Clock::steps());
            let report =
                StatSym::new(cfg(workers)).run_with_analysis_traced(&m, analysis.clone(), &rec);
            (report, render_trace(&rec.finish()))
        };

        let (seq_report, seq) = record(1);
        assert!(seq_report.found.is_none(), "budget must kill every attempt");
        assert!(!seq_report.attempts.is_empty());
        let events = parse_trace_strict(&seq).expect("budget-killed trace is strict-valid");
        let trips = events
            .iter()
            .filter(
                |e| matches!(e, TraceEvent::State { op, .. } if op == lineage_op::BUDGET_EXCEEDED),
            )
            .count();
        assert_eq!(
            trips,
            seq_report.attempts.len(),
            "one budget_exceeded disposition per attempt"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                TraceEvent::Counter { name, value } if name == statsym_telemetry::names::BUDGET_EXCEEDED
                    && *value == seq_report.attempts.len() as u64
            )),
            "budget.exceeded counter reconciles with attempts"
        );

        // A budget trip is pinned to an exact instruction count, so the
        // portfolio merge reproduces the sequential trace byte for byte
        // at any worker count.
        for workers in [2, 4] {
            let (par_report, par) = record(workers);
            assert!(par_report.found.is_none());
            assert_eq!(seq, par, "workers={workers} trace must be byte-identical");
        }
    }

    #[test]
    fn split_worker_budget_gives_candidates_priority() {
        assert_eq!(split_worker_budget(8, 0), (1, 8));
        assert_eq!(split_worker_budget(8, 1), (1, 8));
        assert_eq!(split_worker_budget(8, 3), (3, 2));
        assert_eq!(split_worker_budget(8, 8), (8, 0));
        assert_eq!(split_worker_budget(6, 4), (4, 0));
        assert_eq!(split_worker_budget(0, 3), (1, 0));
        assert_eq!(split_worker_budget(16, 3), (3, 5));
    }

    #[test]
    fn surplus_workers_flow_into_the_engine_on_single_candidate_runs() {
        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 7);
        let mut analysis = StatSym::default().analyze(&logs);
        analysis.candidates.as_mut().unwrap().paths.truncate(1);
        let seq = StatSym::default().run_with_analysis(&m, analysis.clone());
        let s = seq.found.as_ref().expect("single candidate suffices");
        // workers > 1 with one candidate cannot portfolio: the budget
        // must move inside the engine (state_workers = 4) and still
        // verify the same fault with a replayable witness.
        let cfg = StatSymConfig {
            workers: 4,
            auto_split_workers: true,
            ..StatSymConfig::default()
        };
        let par = StatSym::new(cfg).run_with_analysis(&m, analysis);
        let p = par.found.as_ref().expect("state-parallel run still finds");
        assert_eq!(p.fault.func, s.fault.func);
        assert_eq!(par.candidate_used, Some(0));
        let vm = concrete::Vm::new(&m, concrete::VmConfig::default());
        let replay = vm.run(&p.inputs).unwrap();
        assert!(replay.outcome.is_fault(), "witness must replay concretely");
    }

    #[test]
    fn calibration_records_every_attempt_and_derives_gauges() {
        use statsym_telemetry::{names, parse_trace_strict, render_trace, Clock, MemRecorder};
        use statsym_telemetry::{FieldValue, TraceEvent};

        let m = module();
        let logs = gen_logs(&m, 30, 1.0, 7);
        let mut analysis = StatSym::default().analyze(&logs);
        let cs = analysis.candidates.as_mut().unwrap();
        cs.paths.insert(0, decoy_candidate());
        cs.paths.insert(0, decoy_candidate());

        let base = StatSymConfig::default();
        let cfg = StatSymConfig {
            engine: EngineConfig {
                max_steps: 95,
                ..base.engine
            },
            ..base
        };
        let rec = MemRecorder::new(Clock::steps());
        let report = StatSym::new(cfg).run_with_analysis_traced(&m, analysis, &rec);
        assert_eq!(report.candidate_used, Some(2), "decoys must not win");

        let trace = render_trace(&rec.finish());
        let events = parse_trace_strict(&trace).expect("calibrated trace is strict-valid");
        let field = |fields: &[(String, FieldValue)], key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or_else(|| panic!("calib.candidate field {key} missing"))
        };
        let calib: Vec<&Vec<(String, FieldValue)>> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Event { name, fields, .. } if name == names::CALIB_CANDIDATE => {
                    Some(fields)
                }
                _ => None,
            })
            .collect();
        // One record per attempt, 1-based ranks in attempt order; only
        // the real candidate (rank 3) verified the fault.
        assert_eq!(calib.len(), report.attempts.len());
        for (i, fields) in calib.iter().enumerate() {
            assert_eq!(field(fields, "rank"), i as u64 + 1);
            assert_eq!(field(fields, "steps"), report.attempts[i].stats.exec.steps);
            assert_eq!(field(fields, "found"), u64::from(i == 2));
            // Step-clock traces carry no wall-measured µs.
            assert!(!fields.iter().any(|(k, _)| k == "solver_us"));
        }

        let gauge = |name: &str| {
            events.iter().find_map(|e| match e {
                TraceEvent::Gauge { name: n, value } if n == name => Some(*value),
                _ => None,
            })
        };
        assert_eq!(gauge(names::CALIB_WINNER_RANK), Some(3));
        // Decoys rank ahead yet cost more: by construction this ranking
        // anti-predicts cost, so the correlation is negative.
        let corr = gauge(names::CALIB_RANK_COST_CORR).expect("corr gauge present");
        assert!(corr < 0, "decoy fixture must anti-correlate, got {corr}");
    }

    #[test]
    fn empty_logs_produce_no_candidates() {
        let m = module();
        let statsym = StatSym::default();
        let report = statsym.run(&m, &[]);
        assert!(report.found.is_none());
        assert!(report.attempts.is_empty());
        assert_eq!(report.analysis.n_candidates(), 0);
    }
}
