//! Hand-written lexer for MiniC.
//!
//! Supports `//` line comments, decimal integer literals, string and char
//! literals with a small escape set, identifiers/keywords, and the operator
//! set listed in [`crate::token::TokenKind`].

use crate::token::{Token, TokenKind};
use crate::{Error, Result, Span};

/// Tokenizes `src` into a vector of tokens terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns an [`Error`] on unterminated literals, bad escapes, integer
/// overflow, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let span = self.span();
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(out);
            };
            let kind = match b {
                b'0'..=b'9' => self.number(span)?,
                b'"' => self.string(span)?,
                b'\'' => self.char_lit(span)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.punct(span)?,
            };
            out.push(Token { kind, span });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self, span: Span) -> Result<TokenKind> {
        let mut v: i64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as i64))
                .ok_or_else(|| Error::new(span, "integer literal overflows i64"))?;
            self.bump();
        }
        Ok(TokenKind::Int(v))
    }

    fn escape(&mut self, span: Span) -> Result<u8> {
        match self.bump() {
            Some(b'n') => Ok(b'\n'),
            Some(b't') => Ok(b'\t'),
            Some(b'\\') => Ok(b'\\'),
            Some(b'"') => Ok(b'"'),
            Some(b'\'') => Ok(b'\''),
            Some(b'0') => Ok(0),
            other => Err(Error::new(
                span,
                format!("invalid escape sequence: \\{:?}", other.map(|b| b as char)),
            )),
        }
    }

    fn string(&mut self, span: Span) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = Vec::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(Error::new(span, "unterminated string literal")),
                Some(b'"') => break,
                Some(b'\\') => s.push(self.escape(span)?),
                Some(b) => s.push(b),
            }
        }
        let s = String::from_utf8(s)
            .map_err(|_| Error::new(span, "string literal is not valid UTF-8"))?;
        Ok(TokenKind::Str(s))
    }

    fn char_lit(&mut self, span: Span) -> Result<TokenKind> {
        self.bump(); // opening quote
        let b = match self.bump() {
            None => return Err(Error::new(span, "unterminated character literal")),
            Some(b'\\') => self.escape(span)?,
            Some(b) => b,
        };
        match self.bump() {
            Some(b'\'') => Ok(TokenKind::Char(b)),
            _ => Err(Error::new(span, "unterminated character literal")),
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        // Safety of unwrap: identifier bytes are ASCII by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()))
    }

    fn punct(&mut self, span: Span) -> Result<TokenKind> {
        let b = self.bump().expect("punct called at end of input");
        let two = |l: &mut Self, second: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(second) {
                l.bump();
                yes
            } else {
                no
            }
        };
        Ok(match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'+' => TokenKind::Plus,
            b'-' => two(self, b'>', TokenKind::Arrow, TokenKind::Minus),
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::NotEq, TokenKind::Bang),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(Error::new(span, "expected `&&`"));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(Error::new(span, "expected `||`"));
                }
            }
            other => {
                return Err(Error::new(
                    span,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_function() {
        let k = kinds("fn f(x: int) -> int { return x + 1; }");
        assert_eq!(k[0], TokenKind::KwFn);
        assert_eq!(k[1], TokenKind::Ident("f".into()));
        assert!(k.contains(&TokenKind::Arrow));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(
            kinds("<= < >= > == = != ! && ||"),
            vec![
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::Ge,
                TokenKind::Gt,
                TokenKind::EqEq,
                TokenKind::Assign,
                TokenKind::NotEq,
                TokenKind::Bang,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_and_char_escapes() {
        assert_eq!(
            kinds(r#""a\nb" '\0' 'z'"#),
            vec![
                TokenKind::Str("a\nb".into()),
                TokenKind::Char(0),
                TokenKind::Char(b'z'),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("// header\nfn").unwrap();
        assert_eq!(toks[0].kind, TokenKind::KwFn);
        assert_eq!(toks[0].span.line, 2);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rejects_lone_ampersand() {
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn rejects_integer_overflow() {
        assert!(lex("99999999999999999999").is_err());
    }
}
