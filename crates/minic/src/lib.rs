//! MiniC: a small C-like imperative language used as the program substrate
//! for the StatSym reproduction.
//!
//! The original paper analyzes real C programs (polymorph, CTree, Grep,
//! thttpd). Reproducing the paper from scratch requires a language front end
//! we fully control, so `minic` provides:
//!
//! * a [`lexer`] and recursive-descent [`parser`] producing an [`ast`],
//! * a [`check`] pass enforcing the (simple, monomorphic) type system,
//! * [`stats`] computing the program-scale statistics reported in the
//!   paper's Table I (SLOC, external/internal call sites, globals,
//!   parameters),
//! * a [`callgraph`] used by the statistical analysis to reason about
//!   function entry/exit events.
//!
//! The language deliberately mirrors the C features the paper's evaluation
//! exercises: global variables, functions with parameters and return
//! values, `while` loops over NUL-terminated strings, fixed-capacity stack
//! buffers (the overflow target), and assertions.
//!
//! # Example
//!
//! ```
//! use minic::parse_program;
//!
//! let src = r#"
//!     global hits: int = 0;
//!     fn inc(x: int) -> int { hits = hits + 1; return x + 1; }
//!     fn main() -> int { return inc(41); }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.functions.len(), 2);
//! # Ok::<(), minic::Error>(())
//! ```

pub mod ast;
pub mod callgraph;
pub mod check;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod stats;
pub mod token;

pub use ast::{
    BinOp, Block, Expr, ExprKind, Function, Global, Param, Program, Stmt, StmtKind, Type, UnOp,
};
pub use callgraph::CallGraph;
pub use check::check_program;
pub use parser::{parse_program, parse_program_unchecked};
pub use pretty::{print_expr, print_program};
pub use stats::{program_stats, ProgramStats};

use std::fmt;

/// Source position (1-based line and column) used in diagnostics and as the
/// stable identity of instrumentation locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Span {
    /// Creates a new span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error produced by the MiniC front end (lexing, parsing, or type
/// checking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Location of the offending token or construct.
    pub span: Span,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl Error {
    /// Creates an error at `span` with the given message.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Error {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for Error {}

/// Convenient result alias for front-end operations.
pub type Result<T> = std::result::Result<T, Error>;
