//! MiniC pretty-printer: renders an AST back to parseable source.
//!
//! `parse(print(ast))` re-produces an AST that prints identically
//! (print∘parse is a fixpoint), which the roundtrip tests rely on.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        match &g.init {
            Some(init) => {
                let _ = writeln!(out, "global {}: {} = {};", g.name, g.ty, print_expr(init));
            }
            None => {
                let _ = writeln!(out, "global {}: {};", g.name, g.ty);
            }
        }
    }
    for f in &p.functions {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|pa| format!("{}: {}", pa.name, pa.ty))
            .collect();
        match f.ret {
            Some(rt) => {
                let _ = writeln!(out, "fn {}({}) -> {rt} {{", f.name, params.join(", "));
            }
            None => {
                let _ = writeln!(out, "fn {}({}) {{", f.name, params.join(", "));
            }
        }
        print_block(&f.body, 1, &mut out);
        out.push_str("}\n");
    }
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn print_block(b: &Block, depth: usize, out: &mut String) {
    for s in &b.stmts {
        print_stmt(s, depth, out);
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match &s.kind {
        StmtKind::Let { name, ty, init } => match init {
            Some(e) => {
                let _ = writeln!(out, "let {name}: {ty} = {};", print_expr(e));
            }
            None => {
                let _ = writeln!(out, "let {name}: {ty};");
            }
        },
        StmtKind::Assign { name, value } => {
            let _ = writeln!(out, "{name} = {};", print_expr(value));
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block(then_blk, depth + 1, out);
            indent(depth, out);
            match else_blk {
                Some(e) => {
                    out.push_str("} else {\n");
                    print_block(e, depth + 1, out);
                    indent(depth, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_block(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", print_expr(e));
        }
        StmtKind::Return(None) => out.push_str("return;\n"),
        StmtKind::Assert(e) => {
            let _ = writeln!(out, "assert({});", print_expr(e));
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", print_expr(e));
        }
    }
}

/// Renders an expression with explicit parentheses (safe for any
/// precedence context).
pub fn print_expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Str(s) => print_str_literal(s),
        ExprKind::Var(n) => n.clone(),
        ExprKind::Bin { op, lhs, rhs } => {
            format!("({} {op} {})", print_expr(lhs), print_expr(rhs))
        }
        ExprKind::Un { op, operand } => format!("({op}{})", print_expr(operand)),
        ExprKind::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{callee}({})", args.join(", "))
        }
    }
}

fn print_str_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\0' => out.push_str("\\0"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed source does not parse: {e}\n{printed}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "print∘parse must be a fixpoint");
        // Structure is preserved (spans differ, so compare shape).
        assert_eq!(p1.functions.len(), p2.functions.len());
        assert_eq!(p1.globals.len(), p2.globals.len());
    }

    #[test]
    fn roundtrips_core_constructs() {
        roundtrip(
            r#"
            global g: int = 42;
            global s: str = "a\"b\\c\nd";
            fn helper(x: int, name: str) -> bool {
                let b: buf[8];
                let i: int = 0;
                while (i < x && x >= 0) {
                    if (char_at(name, i) == 'q') { break; }
                    buf_set(b, i % 8, char_at(name, i));
                    i = i + 1;
                }
                return i == x || false;
            }
            fn main() {
                let n: str = input_str("n", 16);
                if (helper(3, n)) { print(g); } else { g = -g; }
                assert(g != 0);
                exit(0);
            }
            "#,
        );
    }

    #[test]
    fn roundtrips_else_if_chains() {
        roundtrip(
            r#"
            fn classify(v: int) -> int {
                if (v < 0) { return 0; }
                else if (v < 10) { return 1; }
                else if (v < 100) { return 2; }
                else { return 3; }
            }
            fn main() { print(classify(5)); }
            "#,
        );
    }

    #[test]
    fn string_escapes_render_correctly() {
        assert_eq!(print_str_literal("a\nb"), "\"a\\nb\"");
        assert_eq!(print_str_literal("q\"q"), "\"q\\\"q\"");
        assert_eq!(print_str_literal("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(print_str_literal(""), "\"\"");
    }

    #[test]
    fn unary_and_nested_parens() {
        let p = parse_program("fn main() -> int { return -(1 + 2) * !true == false; }");
        // `!true == false` parses as `(!true) == false` since unary binds
        // tighter; ensure the printer is faithful by just roundtripping.
        if let Ok(prog) = p {
            let printed = print_program(&prog);
            parse_program(&printed).expect("printed parses");
        }
    }
}
