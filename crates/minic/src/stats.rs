//! Program-scale statistics, mirroring the paper's Table I.
//!
//! Table I reports, per application: Source Lines of Code (SLOC), external
//! call sites (libc/system calls — MiniC builtins here), internal
//! (user-level) call sites, global variables, and function parameters.

use crate::ast::*;

/// The statistics the paper's Table I reports for each program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Non-blank, non-comment-only source lines.
    pub sloc: usize,
    /// Call sites targeting builtins ("Ext. Call").
    pub external_calls: usize,
    /// Call sites targeting user-defined functions ("Inter. Call").
    pub internal_calls: usize,
    /// Number of global variables ("G.V.").
    pub globals: usize,
    /// Total formal parameters across all functions ("Params.").
    pub params: usize,
    /// Number of function definitions (not in Table I but useful context).
    pub functions: usize,
    /// Number of branch statements (`if`/`while`), a proxy for path count.
    pub branches: usize,
}

/// Computes [`ProgramStats`] for a checked program.
///
/// # Example
///
/// ```
/// let p = minic::parse_program("fn main() -> int { print(1); return 0; }")?;
/// let s = minic::program_stats(&p);
/// assert_eq!(s.external_calls, 1);
/// assert_eq!(s.functions, 1);
/// # Ok::<(), minic::Error>(())
/// ```
pub fn program_stats(program: &Program) -> ProgramStats {
    let mut stats = ProgramStats {
        sloc: program
            .source
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count(),
        globals: program.globals.len(),
        functions: program.functions.len(),
        ..ProgramStats::default()
    };
    for f in &program.functions {
        stats.params += f.params.len();
        visit_block(&f.body, &mut stats);
    }
    stats
}

fn visit_block(block: &Block, stats: &mut ProgramStats) {
    for stmt in &block.stmts {
        visit_stmt(stmt, stats);
    }
}

fn visit_stmt(stmt: &Stmt, stats: &mut ProgramStats) {
    match &stmt.kind {
        StmtKind::Let { init, .. } => {
            if let Some(e) = init {
                visit_expr(e, stats);
            }
        }
        StmtKind::Assign { value, .. } => visit_expr(value, stats),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            stats.branches += 1;
            visit_expr(cond, stats);
            visit_block(then_blk, stats);
            if let Some(e) = else_blk {
                visit_block(e, stats);
            }
        }
        StmtKind::While { cond, body } => {
            stats.branches += 1;
            visit_expr(cond, stats);
            visit_block(body, stats);
        }
        StmtKind::Return(Some(e)) | StmtKind::Assert(e) | StmtKind::Expr(e) => visit_expr(e, stats),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
    }
}

fn visit_expr(e: &Expr, stats: &mut ProgramStats) {
    match &e.kind {
        ExprKind::Bin { lhs, rhs, .. } => {
            visit_expr(lhs, stats);
            visit_expr(rhs, stats);
        }
        ExprKind::Un { operand, .. } => visit_expr(operand, stats),
        ExprKind::Call { callee, args } => {
            if Builtin::from_name(callee).is_some() {
                stats.external_calls += 1;
            } else {
                stats.internal_calls += 1;
            }
            for a in args {
                visit_expr(a, stats);
            }
        }
        ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Str(_) | ExprKind::Var(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn counts_calls_globals_params_branches() {
        let p = parse_program(
            r#"
            global g1: int = 0;
            global g2: str = "";
            fn helper(a: int, b: int) -> int {
                if (a < b) { return a; }
                return b;
            }
            fn main() -> int {
                let i: int = 0;
                while (i < 3) {
                    print(helper(i, 2)); // 1 ext + 1 internal per visit
                    i = i + 1;
                }
                return helper(g1, 0);
            }
            "#,
        )
        .unwrap();
        let s = program_stats(&p);
        assert_eq!(s.globals, 2);
        assert_eq!(s.params, 2);
        assert_eq!(s.functions, 2);
        assert_eq!(s.internal_calls, 2);
        assert_eq!(s.external_calls, 1);
        assert_eq!(s.branches, 2);
        assert!(s.sloc >= 10);
    }

    #[test]
    fn sloc_skips_blank_and_comment_lines() {
        let p = parse_program("// comment\n\nfn main() { return; }\n").unwrap();
        assert_eq!(program_stats(&p).sloc, 1);
    }
}
