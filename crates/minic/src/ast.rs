//! Abstract syntax tree for MiniC.

use crate::Span;
use std::fmt;

/// A complete MiniC program: global variables plus function definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variable declarations, in source order.
    pub globals: Vec<Global>,
    /// Function definitions, in source order. Execution starts at `main`.
    pub functions: Vec<Function>,
    /// The original source text (kept for SLOC statistics and diagnostics).
    pub source: String,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }
}

/// A global variable declaration, e.g. `global track: int = 0;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Declared type (only `int`, `bool`, and `str` globals are allowed).
    pub ty: Type,
    /// Optional initializer; must be a literal expression.
    pub init: Option<Expr>,
    /// Declaration site.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name; `main` is the entry point.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type; `None` means the function returns no value.
    pub ret: Option<Type>,
    /// Function body.
    pub body: Block,
    /// Definition site.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Declaration site.
    pub span: Span,
}

/// MiniC types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Immutable NUL-terminated byte string (by value semantics).
    Str,
    /// Mutable fixed-capacity byte buffer. `Some(n)` at declaration sites;
    /// `None` for parameters, which accept any capacity (by reference).
    Buf(Option<u32>),
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "str"),
            Type::Buf(Some(n)) => write!(f, "buf[{n}]"),
            Type::Buf(None) => write!(f, "buf"),
        }
    }
}

impl Type {
    /// True if values of `self` may be passed where `other` is expected.
    pub fn compatible(self, other: Type) -> bool {
        matches!(
            (self, other),
            (Type::Int, Type::Int)
                | (Type::Bool, Type::Bool)
                | (Type::Str, Type::Str)
                | (Type::Buf(_), Type::Buf(_))
        )
    }
}

/// A `{ ... }` statement block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// Source location of the statement's first token.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `let name: ty = init;` — local variable declaration. Buffers use
    /// `let name: buf[N];` and take no initializer.
    Let {
        name: String,
        ty: Type,
        init: Option<Expr>,
    },
    /// `name = value;` — assignment to a local, parameter, or global.
    Assign { name: String, value: Expr },
    /// `if (cond) { .. } else { .. }`.
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    /// `while (cond) { .. }`.
    While { cond: Expr, body: Block },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `assert(e);` — failure is a program fault (the paper's fault point).
    Assert(Expr),
    /// `break;` out of the innermost loop.
    Break,
    /// `continue;` the innermost loop.
    Continue,
    /// An expression evaluated for effect (a call).
    Expr(Expr),
}

/// An expression with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Variable reference (local, parameter, or global).
    Var(String),
    /// Binary operation.
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un { op: UnOp, operand: Box<Expr> },
    /// Function or builtin call.
    Call { callee: String, args: Vec<Expr> },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit logical and (lowered to control flow).
    And,
    /// Short-circuit logical or (lowered to control flow).
    Or,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for `+ - * / %`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("!"),
        }
    }
}

/// The builtin (external) functions MiniC programs may call. These play the
/// role of libc/system calls in the paper's "External Calls" statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `len(s: str) -> int` — string length.
    Len,
    /// `char_at(s: str, i: int) -> int` — byte at index `i`; index `len(s)`
    /// yields the NUL terminator (0); beyond that is an out-of-bounds fault.
    CharAt,
    /// `buf_set(b: buf, i: int, v: int)` — write byte; out-of-capacity is a
    /// buffer-overflow fault (the paper's vulnerability class).
    BufSet,
    /// `buf_get(b: buf, i: int) -> int` — read byte; bounds-checked.
    BufGet,
    /// `buf_cap(b: buf) -> int` — buffer capacity.
    BufCap,
    /// `input_str(name: str, cap: int) -> str` — named string input
    /// (command-line argument, environment variable, or request payload).
    InputStr,
    /// `input_int(name: str) -> int` — named integer input.
    InputInt,
    /// `print(e)` — output sink (ignored by analyses).
    Print,
    /// `exit(code: int)` — terminate the program normally.
    Exit,
    /// `alloc(n: int) -> buf` — dynamic heap allocation. A request outside
    /// `[0, MAX_ALLOC]` is an allocation-overflow fault (models integer
    /// overflow/truncation feeding an allocation size).
    Alloc,
    /// `free(b: buf)` — release a heap allocation; later access (or a second
    /// free) is a use-after-free fault.
    Free,
    /// `format(fmt: str)` — format-string-style output sink: a `%` byte in
    /// attacker-controlled data is a format-string fault.
    Format,
}

impl Builtin {
    /// Resolves a call target name to a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "len" => Builtin::Len,
            "char_at" => Builtin::CharAt,
            "buf_set" => Builtin::BufSet,
            "buf_get" => Builtin::BufGet,
            "buf_cap" => Builtin::BufCap,
            "input_str" => Builtin::InputStr,
            "input_int" => Builtin::InputInt,
            "print" => Builtin::Print,
            "exit" => Builtin::Exit,
            "alloc" => Builtin::Alloc,
            "free" => Builtin::Free,
            "format" => Builtin::Format,
            _ => return None,
        })
    }

    /// The builtin's name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Len => "len",
            Builtin::CharAt => "char_at",
            Builtin::BufSet => "buf_set",
            Builtin::BufGet => "buf_get",
            Builtin::BufCap => "buf_cap",
            Builtin::InputStr => "input_str",
            Builtin::InputInt => "input_int",
            Builtin::Print => "print",
            Builtin::Exit => "exit",
            Builtin::Alloc => "alloc",
            Builtin::Free => "free",
            Builtin::Format => "format",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_compatibility_ignores_buffer_capacity() {
        assert!(Type::Buf(Some(64)).compatible(Type::Buf(None)));
        assert!(Type::Buf(None).compatible(Type::Buf(Some(12))));
        assert!(!Type::Int.compatible(Type::Bool));
    }

    #[test]
    fn builtin_roundtrip() {
        for b in [
            Builtin::Len,
            Builtin::CharAt,
            Builtin::BufSet,
            Builtin::BufGet,
            Builtin::BufCap,
            Builtin::InputStr,
            Builtin::InputInt,
            Builtin::Print,
            Builtin::Exit,
            Builtin::Alloc,
            Builtin::Free,
            Builtin::Format,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("strcpy"), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Rem.is_arithmetic());
        assert!(!BinOp::And.is_arithmetic());
    }
}
