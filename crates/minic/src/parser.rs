//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use crate::{Error, Result, Span};

/// Parses a full MiniC program and type-checks it.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or type error encountered.
///
/// # Example
///
/// ```
/// let p = minic::parse_program("fn main() -> int { return 0; }")?;
/// assert_eq!(p.functions[0].name, "main");
/// # Ok::<(), minic::Error>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program> {
    let program = parse_program_unchecked(src)?;
    crate::check::check_program(&program)?;
    Ok(program)
}

/// Parses a program without running the type checker.
///
/// Useful for tooling that wants to inspect syntactically valid fragments
/// (e.g. a program with no `main`).
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse_program_unchecked(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut program = parser.program()?;
    program.source = src.to_owned();
    Ok(program)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(Error::new(
                self.span(),
                format!("expected `{kind}`, found `{}`", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(Error::new(
                self.span(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::KwGlobal => globals.push(self.global()?),
                TokenKind::KwFn => functions.push(self.function()?),
                other => {
                    return Err(Error::new(
                        self.span(),
                        format!("expected `global` or `fn` at top level, found `{other}`"),
                    ))
                }
            }
        }
        Ok(Program {
            globals,
            functions,
            source: String::new(),
        })
    }

    fn global(&mut self) -> Result<Global> {
        let span = self.span();
        self.expect(&TokenKind::KwGlobal)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.ty()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi)?;
        Ok(Global {
            name,
            ty,
            init,
            span,
        })
    }

    fn function(&mut self) -> Result<Function> {
        let span = self.span();
        self.expect(&TokenKind::KwFn)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let pspan = self.span();
                let pname = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.ty()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let ret = if self.eat(&TokenKind::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn ty(&mut self) -> Result<Type> {
        let span = self.span();
        match self.bump() {
            TokenKind::KwInt => Ok(Type::Int),
            TokenKind::KwBool => Ok(Type::Bool),
            TokenKind::KwStr => Ok(Type::Str),
            TokenKind::KwBuf => {
                if self.eat(&TokenKind::LBracket) {
                    let n = match self.bump() {
                        TokenKind::Int(n) if (1..=u32::MAX as i64).contains(&n) => n as u32,
                        _ => {
                            return Err(Error::new(span, "buffer capacity must be a positive int"))
                        }
                    };
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Type::Buf(Some(n)))
                } else {
                    Ok(Type::Buf(None))
                }
            }
            other => Err(Error::new(span, format!("expected type, found `{other}`"))),
        }
    }

    fn block(&mut self) -> Result<Block> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        let kind = match self.peek() {
            TokenKind::KwLet => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.ty()?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::Semi)?;
                StmtKind::Let { name, ty, init }
            }
            TokenKind::KwIf => return self.if_stmt(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                StmtKind::While { cond, body }
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                StmtKind::Return(value)
            }
            TokenKind::KwAssert => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Assert(cond)
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Break
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Continue
            }
            TokenKind::Ident(_) => {
                // Either `x = e;` or an expression statement (a call).
                if matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Assign)
                ) {
                    let name = self.ident()?;
                    self.bump(); // `=`
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    StmtKind::Assign { name, value }
                } else {
                    let e = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    StmtKind::Expr(e)
                }
            }
            other => {
                return Err(Error::new(
                    span,
                    format!("expected statement, found `{other}`"),
                ))
            }
        };
        Ok(Stmt { kind, span })
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.block()?;
        let else_blk = if self.eat(&TokenKind::KwElse) {
            if self.peek() == &TokenKind::KwIf {
                // `else if` sugar: wrap the nested if in a one-statement block.
                let nested = self.if_stmt()?;
                Some(Block {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
            span,
        })
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::OrOr {
            let span = self.span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = bin(BinOp::Or, lhs, rhs, span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &TokenKind::AndAnd {
            let span = self.span();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = bin(BinOp::And, lhs, rhs, span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let span = self.span();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(bin(op, lhs, rhs, span))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = bin(op, lhs, rhs, span);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = bin(op, lhs, rhs, span);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::Un {
                        op: UnOp::Neg,
                        operand: Box::new(operand),
                    },
                    span,
                })
            }
            TokenKind::Bang => {
                self.bump();
                let operand = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::Un {
                        op: UnOp::Not,
                        operand: Box::new(operand),
                    },
                    span,
                })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let span = self.span();
        let kind = match self.bump() {
            TokenKind::Int(v) => ExprKind::Int(v),
            TokenKind::Char(c) => ExprKind::Int(c as i64),
            TokenKind::Str(s) => ExprKind::Str(s),
            TokenKind::KwTrue => ExprKind::Bool(true),
            TokenKind::KwFalse => ExprKind::Bool(false),
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(inner);
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    ExprKind::Call { callee: name, args }
                } else {
                    ExprKind::Var(name)
                }
            }
            other => {
                return Err(Error::new(
                    span,
                    format!("expected expression, found `{other}`"),
                ))
            }
        };
        Ok(Expr { kind, span })
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr, span: Span) -> Expr {
    Expr {
        kind: ExprKind::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        },
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_main() {
        let p = parse_program("fn main() -> int { return 0; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
    }

    #[test]
    fn parses_globals_with_initializers() {
        let p =
            parse_program("global track: int = 3; global name: str = \"x\"; fn main() { return; }")
                .unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].ty, Type::Int);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse_program("fn main() -> int { return 1 + 2 * 3; }").unwrap();
        let StmtKind::Return(Some(e)) = &p.functions[0].body.stmts[0].kind else {
            panic!("expected return");
        };
        let ExprKind::Bin { op, rhs, .. } = &e.kind else {
            panic!("expected binary expr");
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(rhs.kind, ExprKind::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_program_unchecked(
            "fn f(x: int) -> int { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }",
        )
        .unwrap();
        let StmtKind::If { else_blk, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        let nested = &else_blk.as_ref().unwrap().stmts[0];
        assert!(matches!(nested.kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_buffers_and_builtin_calls() {
        let p = parse_program(
            "fn main() { let b: buf[16]; buf_set(b, 0, 'a'); let v: int = buf_get(b, 0); print(v); }",
        )
        .unwrap();
        assert_eq!(p.functions[0].body.stmts.len(), 4);
    }

    #[test]
    fn parses_while_with_logical_ops() {
        parse_program_unchecked(
            "fn f(x: int) { let i: int = 0; while (i < x && x >= 0 || false) { i = i + 1; } }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse_program("fn main() { let x: int = 1 }").is_err());
    }

    #[test]
    fn rejects_top_level_statement() {
        assert!(parse_program("let x: int = 1;").is_err());
    }

    #[test]
    fn comparison_is_non_associative() {
        // `a < b < c` parses as `(a < b) < c` is rejected by the grammar
        // because cmp is non-chaining; the second `<` terminates the expr.
        assert!(parse_program("fn f(a: int) -> bool { return a < 1 < 2; }").is_err());
    }
}
