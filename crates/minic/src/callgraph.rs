//! Static call graph extraction.
//!
//! The paper's candidate-path analysis works over a Call-Graph-granularity
//! view of the program (§V): nodes are functions, edges are call relations.
//! The *dynamic* transition graph is mined from logs by `statsym-core`; the
//! static call graph here is used for validation, reachability queries, and
//! the hop-distance guidance of the symbolic executor.

use crate::ast::*;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Static call graph: for each function, the set of direct callees.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// `callees[f]` = user functions called (directly) from `f`.
    callees: BTreeMap<String, BTreeSet<String>>,
    /// `callers[f]` = user functions that call `f` directly.
    callers: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    ///
    /// # Example
    ///
    /// ```
    /// let p = minic::parse_program("fn f() { return; } fn main() { f(); }")?;
    /// let cg = minic::CallGraph::build(&p);
    /// assert!(cg.calls("main", "f"));
    /// assert!(cg.reachable_from_main().contains("f"));
    /// # Ok::<(), minic::Error>(())
    /// ```
    pub fn build(program: &Program) -> Self {
        let mut cg = CallGraph::default();
        for f in &program.functions {
            cg.callees.entry(f.name.clone()).or_default();
            cg.callers.entry(f.name.clone()).or_default();
        }
        for f in &program.functions {
            let mut targets = BTreeSet::new();
            collect_block(&f.body, &mut targets);
            for t in targets {
                cg.callers
                    .entry(t.clone())
                    .or_default()
                    .insert(f.name.clone());
                cg.callees.entry(f.name.clone()).or_default().insert(t);
            }
        }
        cg
    }

    /// True if `caller` has a direct call site targeting `callee`.
    pub fn calls(&self, caller: &str, callee: &str) -> bool {
        self.callees.get(caller).is_some_and(|s| s.contains(callee))
    }

    /// Direct callees of `f`.
    pub fn callees(&self, f: &str) -> impl Iterator<Item = &str> {
        self.callees
            .get(f)
            .into_iter()
            .flatten()
            .map(|s| s.as_str())
    }

    /// Direct callers of `f`.
    pub fn callers(&self, f: &str) -> impl Iterator<Item = &str> {
        self.callers
            .get(f)
            .into_iter()
            .flatten()
            .map(|s| s.as_str())
    }

    /// All function names in the graph.
    pub fn functions(&self) -> impl Iterator<Item = &str> {
        self.callees.keys().map(|s| s.as_str())
    }

    /// The set of functions transitively reachable from `main`
    /// (including `main` itself if present).
    pub fn reachable_from_main(&self) -> BTreeSet<String> {
        self.reachable_from("main")
    }

    /// The set of functions transitively reachable from `start`.
    pub fn reachable_from(&self, start: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        if !self.callees.contains_key(start) {
            return seen;
        }
        let mut queue = VecDeque::from([start.to_owned()]);
        seen.insert(start.to_owned());
        while let Some(f) = queue.pop_front() {
            for callee in self.callees(&f) {
                if seen.insert(callee.to_owned()) {
                    queue.push_back(callee.to_owned());
                }
            }
        }
        seen
    }

    /// Length (in call edges) of the shortest call chain from `from` to
    /// `to`, or `None` if unreachable.
    pub fn call_distance(&self, from: &str, to: &str) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist: BTreeMap<&str, usize> = BTreeMap::new();
        dist.insert(from, 0);
        let mut queue = VecDeque::from([from]);
        while let Some(f) = queue.pop_front() {
            let d = dist[f];
            for callee in self.callees(f) {
                if !dist.contains_key(callee) {
                    if callee == to {
                        return Some(d + 1);
                    }
                    dist.insert(callee, d + 1);
                    queue.push_back(callee);
                }
            }
        }
        None
    }
}

fn collect_block(block: &Block, out: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        collect_stmt(stmt, out);
    }
}

fn collect_stmt(stmt: &Stmt, out: &mut BTreeSet<String>) {
    match &stmt.kind {
        StmtKind::Let { init, .. } => {
            if let Some(e) = init {
                collect_expr(e, out);
            }
        }
        StmtKind::Assign { value, .. } => collect_expr(value, out),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            collect_expr(cond, out);
            collect_block(then_blk, out);
            if let Some(b) = else_blk {
                collect_block(b, out);
            }
        }
        StmtKind::While { cond, body } => {
            collect_expr(cond, out);
            collect_block(body, out);
        }
        StmtKind::Return(Some(e)) | StmtKind::Assert(e) | StmtKind::Expr(e) => collect_expr(e, out),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
    }
}

fn collect_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match &e.kind {
        ExprKind::Bin { lhs, rhs, .. } => {
            collect_expr(lhs, out);
            collect_expr(rhs, out);
        }
        ExprKind::Un { operand, .. } => collect_expr(operand, out),
        ExprKind::Call { callee, args } => {
            if Builtin::from_name(callee).is_none() {
                out.insert(callee.clone());
            }
            for a in args {
                collect_expr(a, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn sample() -> Program {
        parse_program(
            r#"
            fn leaf() { return; }
            fn mid() { leaf(); }
            fn unused() { leaf(); }
            fn main() { mid(); }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn edges_and_reachability() {
        let cg = CallGraph::build(&sample());
        assert!(cg.calls("main", "mid"));
        assert!(cg.calls("mid", "leaf"));
        assert!(!cg.calls("main", "leaf"));
        let reach = cg.reachable_from_main();
        assert!(reach.contains("leaf"));
        assert!(!reach.contains("unused"));
    }

    #[test]
    fn callers_are_inverted_edges() {
        let cg = CallGraph::build(&sample());
        let callers: Vec<&str> = cg.callers("leaf").collect();
        assert_eq!(callers, vec!["mid", "unused"]);
    }

    #[test]
    fn call_distance_bfs() {
        let cg = CallGraph::build(&sample());
        assert_eq!(cg.call_distance("main", "leaf"), Some(2));
        assert_eq!(cg.call_distance("main", "main"), Some(0));
        assert_eq!(cg.call_distance("leaf", "main"), None);
        assert_eq!(cg.call_distance("main", "unused"), None);
    }

    #[test]
    fn recursion_terminates() {
        let p = parse_program("fn main() { helper(); } fn helper() { helper(); }").unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.calls("helper", "helper"));
        assert_eq!(cg.call_distance("main", "helper"), Some(1));
    }
}
