//! Token definitions for the MiniC lexer.

use crate::Span;
use std::fmt;

/// A lexical token paired with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts in the source.
    pub span: Span,
}

/// The set of MiniC tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal (decimal), e.g. `512`.
    Int(i64),
    /// String literal, e.g. `"hello"`. Escapes `\n`, `\t`, `\\`, `\"`, `\0`
    /// are resolved during lexing.
    Str(String),
    /// Character literal, e.g. `'a'`; carries its byte value.
    Char(u8),
    /// Identifier or keyword candidate.
    Ident(String),

    // Keywords.
    KwGlobal,
    KwFn,
    KwLet,
    KwIf,
    KwElse,
    KwWhile,
    KwReturn,
    KwAssert,
    KwTrue,
    KwFalse,
    KwInt,
    KwBool,
    KwStr,
    KwBuf,
    KwBreak,
    KwContinue,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `ident`, if it is a reserved word.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "global" => TokenKind::KwGlobal,
            "fn" => TokenKind::KwFn,
            "let" => TokenKind::KwLet,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "return" => TokenKind::KwReturn,
            "assert" => TokenKind::KwAssert,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            "int" => TokenKind::KwInt,
            "bool" => TokenKind::KwBool,
            "str" => TokenKind::KwStr,
            "buf" => TokenKind::KwBuf,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Char(c) => write!(f, "'{}'", *c as char),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::KwGlobal => write!(f, "global"),
            TokenKind::KwFn => write!(f, "fn"),
            TokenKind::KwLet => write!(f, "let"),
            TokenKind::KwIf => write!(f, "if"),
            TokenKind::KwElse => write!(f, "else"),
            TokenKind::KwWhile => write!(f, "while"),
            TokenKind::KwReturn => write!(f, "return"),
            TokenKind::KwAssert => write!(f, "assert"),
            TokenKind::KwTrue => write!(f, "true"),
            TokenKind::KwFalse => write!(f, "false"),
            TokenKind::KwInt => write!(f, "int"),
            TokenKind::KwBool => write!(f, "bool"),
            TokenKind::KwStr => write!(f, "str"),
            TokenKind::KwBuf => write!(f, "buf"),
            TokenKind::KwBreak => write!(f, "break"),
            TokenKind::KwContinue => write!(f, "continue"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_covers_reserved_words() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("buf"), Some(TokenKind::KwBuf));
        assert_eq!(TokenKind::keyword("not_a_kw"), None);
    }

    #[test]
    fn display_is_nonempty_for_all_punct() {
        let toks = [
            TokenKind::Arrow,
            TokenKind::AndAnd,
            TokenKind::OrOr,
            TokenKind::NotEq,
            TokenKind::Eof,
        ];
        for t in toks {
            assert!(!t.to_string().is_empty());
        }
    }
}
