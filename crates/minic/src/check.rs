//! Type checker for MiniC.
//!
//! The type system is deliberately simple (monomorphic, no inference): it
//! exists to catch mistakes in the benchmark programs early and to give the
//! IR lowering pass a fully-annotated AST to work from.

use crate::ast::*;
use crate::{Error, Result, Span};
use std::collections::HashMap;

/// Type of an expression, extended with `Unit` for void calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Val(Type),
    Unit,
}

impl Ty {
    fn val(self, span: Span) -> Result<Type> {
        match self {
            Ty::Val(t) => Ok(t),
            Ty::Unit => Err(Error::new(span, "expression has no value (unit)")),
        }
    }
}

/// Checks a parsed program. Called automatically by
/// [`crate::parse_program`]; exposed for callers that construct ASTs
/// programmatically.
///
/// # Errors
///
/// Returns the first type error: unknown names, arity mismatches, wrong
/// operand types, non-bool conditions, return-type mismatches, duplicate
/// definitions, or a missing `main`.
pub fn check_program(program: &Program) -> Result<()> {
    let mut checker = Checker::new(program)?;
    for f in &program.functions {
        checker.check_function(f)?;
    }
    if program.function("main").is_none() {
        return Err(Error::new(
            Span::default(),
            "program has no `main` function",
        ));
    }
    Ok(())
}

struct FnSig {
    params: Vec<Type>,
    ret: Option<Type>,
}

struct Checker<'p> {
    program: &'p Program,
    fns: HashMap<&'p str, FnSig>,
    globals: HashMap<&'p str, Type>,
    /// Locals and params of the function currently being checked.
    locals: HashMap<String, Type>,
}

impl<'p> Checker<'p> {
    fn new(program: &'p Program) -> Result<Self> {
        let mut fns: HashMap<&str, FnSig> = HashMap::new();
        for f in &program.functions {
            if Builtin::from_name(&f.name).is_some() {
                return Err(Error::new(
                    f.span,
                    format!("function `{}` shadows a builtin", f.name),
                ));
            }
            if fns
                .insert(
                    &f.name,
                    FnSig {
                        params: f.params.iter().map(|p| p.ty).collect(),
                        ret: f.ret,
                    },
                )
                .is_some()
            {
                return Err(Error::new(
                    f.span,
                    format!("duplicate function `{}`", f.name),
                ));
            }
        }
        let mut globals = HashMap::new();
        for g in &program.globals {
            if matches!(g.ty, Type::Buf(_)) {
                return Err(Error::new(g.span, "global buffers are not supported"));
            }
            if globals.insert(g.name.as_str(), g.ty).is_some() {
                return Err(Error::new(g.span, format!("duplicate global `{}`", g.name)));
            }
            if let Some(init) = &g.init {
                match (&init.kind, g.ty) {
                    (ExprKind::Int(_), Type::Int)
                    | (ExprKind::Bool(_), Type::Bool)
                    | (ExprKind::Str(_), Type::Str) => {}
                    _ => {
                        return Err(Error::new(
                            g.span,
                            "global initializer must be a literal of the declared type",
                        ))
                    }
                }
            }
        }
        Ok(Checker {
            program,
            fns,
            globals,
            locals: HashMap::new(),
        })
    }

    fn check_function(&mut self, f: &Function) -> Result<()> {
        self.locals.clear();
        for p in &f.params {
            if let Type::Buf(Some(_)) = p.ty {
                return Err(Error::new(
                    p.span,
                    "buffer parameters must be unsized (`buf`)",
                ));
            }
            if self.locals.insert(p.name.clone(), p.ty).is_some() {
                return Err(Error::new(
                    p.span,
                    format!("duplicate parameter `{}`", p.name),
                ));
            }
        }
        self.check_block(&f.body, f)?;
        Ok(())
    }

    fn check_block(&mut self, block: &Block, f: &Function) -> Result<()> {
        for stmt in &block.stmts {
            self.check_stmt(stmt, f)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt, f: &Function) -> Result<()> {
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                if let Type::Buf(cap) = ty {
                    // Two buffer declaration forms: a sized stack buffer
                    // (`let b: buf[N];`, no initializer) or an unsized
                    // handle bound to a buf-typed initializer, typically
                    // `let h: buf = alloc(n);`.
                    match (cap, init) {
                        (Some(_), None) => {}
                        (Some(_), Some(_)) => {
                            return Err(Error::new(
                                stmt.span,
                                "buffers cannot take an initializer",
                            ));
                        }
                        (None, None) => {
                            return Err(Error::new(
                                stmt.span,
                                "local buffer declarations need a capacity: `let b: buf[N];` \
                                 (or an initializer: `let h: buf = alloc(n);`)",
                            ));
                        }
                        (None, Some(init)) => {
                            let it = self.check_expr(init)?.val(init.span)?;
                            if !matches!(it, Type::Buf(_)) {
                                return Err(Error::new(
                                    stmt.span,
                                    format!(
                                        "let `{name}`: declared `buf` but initializer is `{it}`"
                                    ),
                                ));
                            }
                        }
                    }
                } else if let Some(init) = init {
                    let it = self.check_expr(init)?.val(init.span)?;
                    if !it.compatible(*ty) {
                        return Err(Error::new(
                            stmt.span,
                            format!("let `{name}`: declared `{ty}` but initializer is `{it}`"),
                        ));
                    }
                }
                // Function-level scoping: later statements in any block see
                // the binding; redefinition is an error to keep programs
                // unambiguous for the analyses.
                if self.locals.insert(name.clone(), *ty).is_some() {
                    return Err(Error::new(
                        stmt.span,
                        format!("`{name}` is already defined in this function"),
                    ));
                }
                Ok(())
            }
            StmtKind::Assign { name, value } => {
                let vt = self.check_expr(value)?.val(value.span)?;
                let target = self
                    .locals
                    .get(name)
                    .copied()
                    .or_else(|| self.globals.get(name.as_str()).copied())
                    .ok_or_else(|| {
                        Error::new(
                            stmt.span,
                            format!("assignment to unknown variable `{name}`"),
                        )
                    })?;
                if matches!(target, Type::Buf(_)) {
                    return Err(Error::new(stmt.span, "buffers cannot be reassigned"));
                }
                if !vt.compatible(target) {
                    return Err(Error::new(
                        stmt.span,
                        format!("cannot assign `{vt}` to `{name}: {target}`"),
                    ));
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expect_bool(cond)?;
                self.check_block(then_blk, f)?;
                if let Some(e) = else_blk {
                    self.check_block(e, f)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.expect_bool(cond)?;
                self.check_block(body, f)
            }
            StmtKind::Return(value) => match (value, f.ret) {
                (None, None) => Ok(()),
                (Some(e), Some(rt)) => {
                    let et = self.check_expr(e)?.val(e.span)?;
                    if et.compatible(rt) {
                        Ok(())
                    } else {
                        Err(Error::new(
                            stmt.span,
                            format!("function returns `{rt}` but value is `{et}`"),
                        ))
                    }
                }
                (None, Some(rt)) => Err(Error::new(
                    stmt.span,
                    format!("function must return a `{rt}` value"),
                )),
                (Some(_), None) => Err(Error::new(
                    stmt.span,
                    "function has no return type but returns a value",
                )),
            },
            StmtKind::Assert(cond) => self.expect_bool(cond),
            StmtKind::Break | StmtKind::Continue => Ok(()),
            StmtKind::Expr(e) => {
                if !matches!(e.kind, ExprKind::Call { .. }) {
                    return Err(Error::new(
                        stmt.span,
                        "only calls may be used as statements",
                    ));
                }
                self.check_expr(e)?;
                Ok(())
            }
        }
    }

    fn expect_bool(&mut self, cond: &Expr) -> Result<()> {
        let t = self.check_expr(cond)?.val(cond.span)?;
        if t == Type::Bool {
            Ok(())
        } else {
            Err(Error::new(
                cond.span,
                format!("condition must be `bool`, found `{t}`"),
            ))
        }
    }

    fn check_expr(&mut self, e: &Expr) -> Result<Ty> {
        match &e.kind {
            ExprKind::Int(_) => Ok(Ty::Val(Type::Int)),
            ExprKind::Bool(_) => Ok(Ty::Val(Type::Bool)),
            ExprKind::Str(_) => Ok(Ty::Val(Type::Str)),
            ExprKind::Var(name) => self
                .locals
                .get(name)
                .copied()
                .or_else(|| self.globals.get(name.as_str()).copied())
                .map(Ty::Val)
                .ok_or_else(|| Error::new(e.span, format!("unknown variable `{name}`"))),
            ExprKind::Un { op, operand } => {
                let t = self.check_expr(operand)?.val(operand.span)?;
                match (op, t) {
                    (UnOp::Neg, Type::Int) => Ok(Ty::Val(Type::Int)),
                    (UnOp::Not, Type::Bool) => Ok(Ty::Val(Type::Bool)),
                    _ => Err(Error::new(
                        e.span,
                        format!("unary `{op}` cannot be applied to `{t}`"),
                    )),
                }
            }
            ExprKind::Bin { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?.val(lhs.span)?;
                let rt = self.check_expr(rhs)?.val(rhs.span)?;
                if op.is_arithmetic() {
                    if lt == Type::Int && rt == Type::Int {
                        Ok(Ty::Val(Type::Int))
                    } else {
                        Err(Error::new(
                            e.span,
                            format!("`{op}` needs int operands, found `{lt}` and `{rt}`"),
                        ))
                    }
                } else if op.is_comparison() {
                    let ok = (lt == Type::Int && rt == Type::Int)
                        || (lt == Type::Bool
                            && rt == Type::Bool
                            && matches!(op, BinOp::Eq | BinOp::Ne));
                    if ok {
                        Ok(Ty::Val(Type::Bool))
                    } else {
                        Err(Error::new(
                            e.span,
                            format!("`{op}` cannot compare `{lt}` and `{rt}`"),
                        ))
                    }
                } else {
                    // && and ||
                    if lt == Type::Bool && rt == Type::Bool {
                        Ok(Ty::Val(Type::Bool))
                    } else {
                        Err(Error::new(
                            e.span,
                            format!("`{op}` needs bool operands, found `{lt}` and `{rt}`"),
                        ))
                    }
                }
            }
            ExprKind::Call { callee, args } => self.check_call(e.span, callee, args),
        }
    }

    fn check_call(&mut self, span: Span, callee: &str, args: &[Expr]) -> Result<Ty> {
        let arg_tys: Vec<Type> = args
            .iter()
            .map(|a| self.check_expr(a).and_then(|t| t.val(a.span)))
            .collect::<Result<_>>()?;

        if let Some(b) = Builtin::from_name(callee) {
            return self.check_builtin(span, b, args, &arg_tys);
        }

        let sig = self
            .fns
            .get(callee)
            .ok_or_else(|| Error::new(span, format!("unknown function `{callee}`")))?;
        if sig.params.len() != arg_tys.len() {
            return Err(Error::new(
                span,
                format!(
                    "`{callee}` expects {} arguments, found {}",
                    sig.params.len(),
                    arg_tys.len()
                ),
            ));
        }
        for (i, (pt, at)) in sig.params.iter().zip(&arg_tys).enumerate() {
            if !at.compatible(*pt) {
                return Err(Error::new(
                    span,
                    format!("`{callee}` argument {i}: expected `{pt}`, found `{at}`"),
                ));
            }
        }
        // Suppress unused-field warning; program kept for future diagnostics.
        let _ = self.program;
        Ok(sig.ret.map(Ty::Val).unwrap_or(Ty::Unit))
    }

    fn check_builtin(&self, span: Span, b: Builtin, args: &[Expr], arg_tys: &[Type]) -> Result<Ty> {
        let expect = |want: &[Type], ret: Ty| -> Result<Ty> {
            if arg_tys.len() != want.len() {
                return Err(Error::new(
                    span,
                    format!(
                        "`{}` expects {} arguments, found {}",
                        b.name(),
                        want.len(),
                        arg_tys.len()
                    ),
                ));
            }
            for (i, (w, a)) in want.iter().zip(arg_tys).enumerate() {
                if !a.compatible(*w) {
                    return Err(Error::new(
                        span,
                        format!("`{}` argument {i}: expected `{w}`, found `{a}`", b.name()),
                    ));
                }
            }
            Ok(ret)
        };
        match b {
            Builtin::Len => expect(&[Type::Str], Ty::Val(Type::Int)),
            Builtin::CharAt => expect(&[Type::Str, Type::Int], Ty::Val(Type::Int)),
            Builtin::BufSet => expect(&[Type::Buf(None), Type::Int, Type::Int], Ty::Unit),
            Builtin::BufGet => expect(&[Type::Buf(None), Type::Int], Ty::Val(Type::Int)),
            Builtin::BufCap => expect(&[Type::Buf(None)], Ty::Val(Type::Int)),
            Builtin::InputStr => {
                expect(&[Type::Str, Type::Int], Ty::Val(Type::Str))?;
                // Input names must be literals so the symbolic engine can
                // identify inputs statically.
                if !matches!(args[0].kind, ExprKind::Str(_)) {
                    return Err(Error::new(span, "input name must be a string literal"));
                }
                if !matches!(args[1].kind, ExprKind::Int(_)) {
                    return Err(Error::new(span, "input capacity must be an int literal"));
                }
                Ok(Ty::Val(Type::Str))
            }
            Builtin::InputInt => {
                expect(&[Type::Str], Ty::Val(Type::Int))?;
                if !matches!(args[0].kind, ExprKind::Str(_)) {
                    return Err(Error::new(span, "input name must be a string literal"));
                }
                Ok(Ty::Val(Type::Int))
            }
            Builtin::Print => {
                if args.is_empty() {
                    return Err(Error::new(span, "`print` needs at least one argument"));
                }
                Ok(Ty::Unit)
            }
            Builtin::Exit => expect(&[Type::Int], Ty::Unit),
            Builtin::Alloc => expect(&[Type::Int], Ty::Val(Type::Buf(None))),
            Builtin::Free => expect(&[Type::Buf(None)], Ty::Unit),
            Builtin::Format => expect(&[Type::Str], Ty::Unit),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    fn err(src: &str) -> String {
        parse_program(src).unwrap_err().message
    }

    #[test]
    fn accepts_well_typed_program() {
        parse_program(
            r#"
            global count: int = 0;
            fn helper(s: str, b: buf) -> int {
                let i: int = 0;
                while (char_at(s, i) != 0) { buf_set(b, i, char_at(s, i)); i = i + 1; }
                return i;
            }
            fn main() -> int {
                let input: str = input_str("arg0", 64);
                let b: buf[32];
                count = helper(input, b);
                return count;
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_missing_main() {
        assert!(err("fn f() { return; }").contains("main"));
    }

    #[test]
    fn rejects_unknown_variable() {
        assert!(err("fn main() { let x: int = y; }").contains("unknown variable"));
    }

    #[test]
    fn rejects_type_mismatch_in_assign() {
        assert!(err("fn main() { let x: int = 0; x = true; }").contains("cannot assign"));
    }

    #[test]
    fn rejects_non_bool_condition() {
        assert!(err("fn main() { if (1) { return; } }").contains("must be `bool`"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(err("fn f(x: int) { return; } fn main() { f(); }").contains("expects 1"));
    }

    #[test]
    fn rejects_return_type_mismatch() {
        assert!(err("fn main() -> int { return true; }").contains("returns `int`"));
    }

    #[test]
    fn rejects_buffer_reassignment() {
        assert!(err("fn main() { let b: buf[4]; b = b; }").contains("reassign"));
    }

    #[test]
    fn rejects_sized_buffer_param() {
        assert!(err("fn f(b: buf[4]) { return; } fn main() { return; }").contains("unsized"));
    }

    #[test]
    fn rejects_non_literal_input_name() {
        assert!(
            err(r#"fn main() { let s: str = "x"; let t: str = input_str(s, 4); print(t); }"#)
                .contains("literal")
        );
    }

    #[test]
    fn rejects_shadowing_builtin() {
        assert!(
            err("fn len(s: str) -> int { return 0; } fn main() { return; }").contains("builtin")
        );
    }

    #[test]
    fn rejects_duplicate_local() {
        assert!(err("fn main() { let x: int = 0; let x: int = 1; }").contains("already defined"));
    }

    #[test]
    fn accepts_heap_intrinsics() {
        parse_program(
            r#"
            fn main() {
                let n: int = input_int("n");
                let h: buf = alloc(n);
                buf_set(h, 0, 65);
                format(input_str("s", 8));
                free(h);
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_non_buf_handle_initializer() {
        assert!(err("fn main() { let h: buf = 1; }").contains("initializer is `int`"));
    }

    #[test]
    fn rejects_unsized_buffer_without_initializer() {
        assert!(err("fn main() { let h: buf; }").contains("capacity"));
    }

    #[test]
    fn rejects_non_str_format_argument() {
        assert!(err("fn main() { format(1); }").contains("expected `str`"));
    }

    #[test]
    fn rejects_global_buffer() {
        assert!(err("global b: buf[4]; fn main() { return; }").contains("global buffers"));
    }

    #[test]
    fn rejects_bare_expression_statement() {
        // Literal-headed statements are already rejected by the grammar.
        assert!(err("fn main() { 1 + 2; }").contains("expected statement"));
        // Variable-headed non-call expressions reach the checker.
        assert!(err("fn main() { let x: int = 0; x; }").contains("only calls"));
    }
}
