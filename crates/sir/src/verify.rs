//! Structural validation of SIR modules.
//!
//! Run after lowering (and in tests) to catch malformed IR early: every
//! register must be in range, every block target must exist, call arities
//! must match, and ids must resolve.

use crate::ir::*;
use std::fmt;

/// A structural defect found in a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the defect was found, if any.
    pub function: Option<String>,
    /// Description of the defect.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "in `{name}`: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Validates the structure of `module`.
///
/// # Errors
///
/// Returns the first defect found. A module produced by [`crate::lower()`]
/// always verifies; this exists to guard hand-constructed or mutated IR.
pub fn verify(module: &Module) -> Result<(), VerifyError> {
    if module.funcs.is_empty() {
        return Err(VerifyError {
            function: None,
            message: "module has no functions".into(),
        });
    }
    if module.main.index() >= module.funcs.len() {
        return Err(VerifyError {
            function: None,
            message: format!("main id {} out of range", module.main),
        });
    }
    for f in &module.funcs {
        verify_func(module, f).map_err(|message| VerifyError {
            function: Some(f.name.clone()),
            message,
        })?;
    }
    Ok(())
}

fn verify_func(module: &Module, f: &FuncBody) -> Result<(), String> {
    if f.blocks.is_empty() {
        return Err("function has no blocks".into());
    }
    if f.reg_names.len() != f.num_regs as usize {
        return Err(format!(
            "reg_names has {} entries for {} registers",
            f.reg_names.len(),
            f.num_regs
        ));
    }
    if (f.params.len() as u32) > f.num_regs {
        return Err("fewer registers than parameters".into());
    }
    let check_reg = |r: Reg| -> Result<(), String> {
        if r.0 < f.num_regs {
            Ok(())
        } else {
            Err(format!(
                "register {r} out of range (num_regs={})",
                f.num_regs
            ))
        }
    };
    let check_block = |b: BlockId| -> Result<(), String> {
        if b.index() < f.blocks.len() {
            Ok(())
        } else {
            Err(format!("block {b} out of range"))
        }
    };
    for block in &f.blocks {
        for (inst, _) in &block.insts {
            if let Some(d) = inst.dst() {
                check_reg(d)?;
            }
            for s in inst.sources() {
                check_reg(s)?;
            }
            match inst {
                Inst::Call { func, args, dst } => {
                    let callee = module
                        .funcs
                        .get(func.index())
                        .ok_or_else(|| format!("call target {func} out of range"))?;
                    if callee.params.len() != args.len() {
                        return Err(format!(
                            "call to `{}` passes {} args for {} params",
                            callee.name,
                            args.len(),
                            callee.params.len()
                        ));
                    }
                    if dst.is_some() && callee.ret.is_none() {
                        return Err(format!("call to void `{}` expects a value", callee.name));
                    }
                }
                Inst::LoadGlobal { global, .. } | Inst::StoreGlobal { global, .. }
                    if global.index() >= module.globals.len() =>
                {
                    return Err(format!("global {global} out of range"));
                }
                Inst::Input { input, .. } if input.index() >= module.inputs.len() => {
                    return Err(format!("input {input} out of range"));
                }
                Inst::AllocBuf { cap, .. } if *cap == 0 => {
                    return Err("zero-capacity buffer".into());
                }
                _ => {}
            }
        }
        match &block.term.0 {
            Terminator::Jump(b) => check_block(*b)?,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                check_reg(*cond)?;
                check_block(*then_bb)?;
                check_block(*else_bb)?;
            }
            Terminator::Return(Some(r)) => check_reg(*r)?,
            Terminator::Return(None) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::Span;

    fn tiny_module() -> Module {
        Module {
            funcs: vec![FuncBody {
                name: "main".into(),
                params: vec![],
                ret: None,
                blocks: vec![BasicBlock {
                    insts: vec![],
                    term: (Terminator::Return(None), Span::default()),
                }],
                num_regs: 0,
                reg_names: vec![],
                span: Span::default(),
            }],
            globals: vec![],
            inputs: vec![],
            main: FuncId(0),
        }
    }

    #[test]
    fn accepts_minimal_module() {
        verify(&tiny_module()).unwrap();
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut m = tiny_module();
        m.funcs[0].blocks[0].insts.push((
            Inst::Move {
                dst: Reg(0),
                src: Reg(1),
            },
            Span::default(),
        ));
        let err = verify(&m).unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn rejects_bad_jump_target() {
        let mut m = tiny_module();
        m.funcs[0].blocks[0].term = (Terminator::Jump(BlockId(9)), Span::default());
        assert!(verify(&m).is_err());
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = tiny_module();
        m.funcs[0].blocks[0].insts.push((
            Inst::Call {
                dst: None,
                func: FuncId(0),
                args: vec![Reg(0)],
            },
            Span::default(),
        ));
        // Register 0 is also out of range, but arity triggers only after
        // the register check passes, so bump num_regs first.
        m.funcs[0].num_regs = 1;
        m.funcs[0].reg_names = vec![None];
        let err = verify(&m).unwrap_err();
        assert!(err.message.contains("args"));
    }

    #[test]
    fn rejects_empty_module() {
        let m = Module::default();
        assert!(verify(&m).is_err());
    }
}
