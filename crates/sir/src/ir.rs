//! SIR instruction set and module containers.

use minic::{BinOp, Span, Type};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a usize index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap().to_ascii_lowercase(), self.0)
            }
        }
    };
}

id_type!(
    /// A virtual register within one function frame.
    Reg
);
id_type!(
    /// A basic block within one function.
    BlockId
);
id_type!(
    /// A function in the module.
    FuncId
);
id_type!(
    /// A global variable slot.
    GlobalId
);
id_type!(
    /// A named program input (symbolic source).
    InputId
);

/// Compile-time constant values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstValue {
    /// 64-bit integer (also used for byte/char values).
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String literal.
    Str(String),
}

/// What kind of value a named input produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Integer input.
    Int,
    /// NUL-terminated string input with at most `cap` content bytes.
    Str {
        /// Maximum number of content bytes (exclusive of the terminator).
        cap: u32,
    },
}

/// A named program input (command-line argument, environment variable,
/// request payload, ...). The concrete VM reads these from the run's
/// input map; the symbolic engine makes them symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputDef {
    /// The name given at the `input_str`/`input_int` call site.
    pub name: String,
    /// Value kind.
    pub kind: InputKind,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Source-level name.
    pub name: String,
    /// Declared type (`int`, `bool`, or `str`).
    pub ty: Type,
    /// Initial value.
    pub init: ConstValue,
}

/// A single SIR instruction. Every instruction carries the [`Span`] of the
/// MiniC construct it was lowered from (stored alongside in the block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst <- const`.
    Const { dst: Reg, value: ConstValue },
    /// `dst <- src`.
    Move { dst: Reg, src: Reg },
    /// `dst <- a op b` for arithmetic and comparison operators. `&&`/`||`
    /// never appear here (lowered to control flow).
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst <- !src` (bool).
    Not { dst: Reg, src: Reg },
    /// `dst <- -src` (int).
    Neg { dst: Reg, src: Reg },
    /// `dst <- globals[g]`.
    LoadGlobal { dst: Reg, global: GlobalId },
    /// `globals[g] <- src`.
    StoreGlobal { global: GlobalId, src: Reg },
    /// Call a user function. `dst` is `None` for void functions.
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args: Vec<Reg>,
    },
    /// Allocate a fresh zero-filled buffer of capacity `cap`.
    AllocBuf { dst: Reg, cap: u32 },
    /// Allocate a fresh zero-filled *dynamic* buffer whose capacity is the
    /// runtime value of `size`. A size outside `[0, MAX_ALLOC]` is an
    /// allocation-overflow fault (integer overflow feeding an allocation).
    Alloc { dst: Reg, size: Reg },
    /// Release the dynamic buffer held by `buf`; later access (or a second
    /// free) is a use-after-free fault.
    Free { buf: Reg },
    /// Format-string sink: fault if `fmt` contains a `%` byte before NUL.
    Format { fmt: Reg },
    /// `buf[idx] <- val & 0xff`. Out-of-capacity index is a
    /// buffer-overflow fault (the paper's vulnerability class).
    BufSet { buf: Reg, idx: Reg, val: Reg },
    /// `dst <- buf[idx]`; bounds-checked.
    BufGet { dst: Reg, buf: Reg, idx: Reg },
    /// `dst <- capacity(buf)`.
    BufCap { dst: Reg, buf: Reg },
    /// `dst <- s[idx]`; reading index `len(s)` yields 0 (the NUL
    /// terminator); reading past it or a negative index is a fault.
    StrAt { dst: Reg, s: Reg, idx: Reg },
    /// `dst <- len(s)`.
    StrLen { dst: Reg, s: Reg },
    /// `dst <- input(i)`.
    Input { dst: Reg, input: InputId },
    /// Output sink; evaluated for effect only.
    Print { args: Vec<Reg> },
    /// Terminate the program normally with the given exit code.
    Exit { code: Reg },
    /// Fault if `cond` is false.
    Assert { cond: Reg },
}

impl Inst {
    /// The destination register this instruction writes, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Move { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Not { dst, .. }
            | Inst::Neg { dst, .. }
            | Inst::LoadGlobal { dst, .. }
            | Inst::AllocBuf { dst, .. }
            | Inst::BufGet { dst, .. }
            | Inst::BufCap { dst, .. }
            | Inst::StrAt { dst, .. }
            | Inst::StrLen { dst, .. }
            | Inst::Input { dst, .. }
            | Inst::Alloc { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::StoreGlobal { .. }
            | Inst::BufSet { .. }
            | Inst::Print { .. }
            | Inst::Exit { .. }
            | Inst::Free { .. }
            | Inst::Format { .. }
            | Inst::Assert { .. } => None,
        }
    }

    /// All registers this instruction reads.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Inst::Const { .. }
            | Inst::LoadGlobal { .. }
            | Inst::AllocBuf { .. }
            | Inst::Input { .. } => vec![],
            Inst::Move { src, .. } | Inst::Not { src, .. } | Inst::Neg { src, .. } => vec![*src],
            Inst::Bin { a, b, .. } => vec![*a, *b],
            Inst::StoreGlobal { src, .. } => vec![*src],
            Inst::Call { args, .. } => args.clone(),
            Inst::BufSet { buf, idx, val } => vec![*buf, *idx, *val],
            Inst::BufGet { buf, idx, .. } => vec![*buf, *idx],
            Inst::BufCap { buf, .. } => vec![*buf],
            Inst::StrAt { s, idx, .. } => vec![*s, *idx],
            Inst::StrLen { s, .. } => vec![*s],
            Inst::Print { args } => args.clone(),
            Inst::Exit { code } => vec![*code],
            Inst::Assert { cond } => vec![*cond],
            Inst::Alloc { size, .. } => vec![*size],
            Inst::Free { buf } => vec![*buf],
            Inst::Format { fmt } => vec![*fmt],
        }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a bool register. This is the only state-forking
    /// point for the symbolic executor.
    Branch {
        cond: Reg,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Return from the current function.
    Return(Option<Reg>),
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => vec![],
        }
    }
}

/// A straight-line sequence of instructions ending in a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Instructions with their source spans.
    pub insts: Vec<(Inst, Span)>,
    /// The terminator and its source span.
    pub term: (Terminator, Span),
}

/// A lowered function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncBody {
    /// Source-level function name.
    pub name: String,
    /// Parameter names and types; parameters occupy registers `0..params.len()`.
    pub params: Vec<(String, Type)>,
    /// Return type, if any.
    pub ret: Option<Type>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Total number of registers used by the body.
    pub num_regs: u32,
    /// Debug names for registers holding named locals (index = register).
    pub reg_names: Vec<Option<String>>,
    /// Definition site in the source.
    pub span: Span,
}

impl FuncBody {
    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Registers that hold source-level named variables (params + locals),
    /// as `(register, name, type)` — the variables the program monitor logs.
    pub fn named_regs(&self) -> Vec<(Reg, &str)> {
        self.reg_names
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_deref().map(|n| (Reg(i as u32), n)))
            .collect()
    }
}

/// A whole lowered program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Functions; `FuncId` indexes this vector.
    pub funcs: Vec<FuncBody>,
    /// Globals; `GlobalId` indexes this vector.
    pub globals: Vec<GlobalDef>,
    /// Named inputs; `InputId` indexes this vector.
    pub inputs: Vec<InputDef>,
    /// `FuncId` of `main`.
    pub main: FuncId,
}

impl Module {
    /// Looks up a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Looks up a function body by name.
    pub fn function_by_name(&self, name: &str) -> Option<&FuncBody> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The body of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (module ids are never forged).
    pub fn func(&self, id: FuncId) -> &FuncBody {
        &self.funcs[id.index()]
    }

    /// Looks up a global id by name.
    pub fn global_id(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Looks up an input id by name.
    pub fn input_id(&self, name: &str) -> Option<InputId> {
        self.inputs
            .iter()
            .position(|i| i.name == name)
            .map(|i| InputId(i as u32))
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.insts.len() + 1).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_is_prefixed() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(FuncId(7).to_string(), "f7");
    }

    #[test]
    fn inst_dst_and_sources() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(2),
            a: Reg(0),
            b: Reg(1),
        };
        assert_eq!(i.dst(), Some(Reg(2)));
        assert_eq!(i.sources(), vec![Reg(0), Reg(1)]);
        let s = Inst::BufSet {
            buf: Reg(0),
            idx: Reg(1),
            val: Reg(2),
        };
        assert_eq!(s.dst(), None);
        assert_eq!(s.sources().len(), 3);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(4)).successors(), vec![BlockId(4)]);
        assert!(Terminator::Return(None).successors().is_empty());
        assert_eq!(
            Terminator::Branch {
                cond: Reg(0),
                then_bb: BlockId(1),
                else_bb: BlockId(2)
            }
            .successors()
            .len(),
            2
        );
    }
}
