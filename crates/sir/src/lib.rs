//! SIR — the StatSym Intermediate Representation.
//!
//! SIR is a register-based bytecode with explicit basic blocks, lowered
//! from the MiniC AST. It plays the role LLVM bitcode plays for KLEE in
//! the paper: both the concrete VM (`concrete`) and the symbolic executor
//! (`symex`) interpret the same SIR module, guaranteeing that statistical
//! logs and symbolic exploration observe identical program structure.
//!
//! * [`ir`] — instruction set, module/function/block containers.
//! * [`mod@lower`] — AST → SIR lowering (short-circuit `&&`/`||` become
//!   control flow, so every path constraint is an atomic comparison).
//! * [`mod@verify`] — structural validator run after lowering.
//! * [`disasm`] — human-readable disassembly for debugging.
//!
//! # Example
//!
//! ```
//! let program = minic::parse_program("fn main() -> int { return 2 + 3; }")?;
//! let module = sir::lower(&program)?;
//! assert!(module.function_by_name("main").is_some());
//! sir::verify(&module).expect("lowering produces valid SIR");
//! # Ok::<(), minic::Error>(())
//! ```

pub mod cfg;
pub mod disasm;
pub mod ir;
pub mod lower;
pub mod verify;

pub use cfg::Cfg;
pub use disasm::disassemble;
pub use ir::{
    BasicBlock, BlockId, ConstValue, FuncBody, FuncId, GlobalDef, GlobalId, InputDef, InputId,
    InputKind, Inst, Module, Reg, Terminator,
};
pub use lower::lower;
pub use verify::{verify, VerifyError};
