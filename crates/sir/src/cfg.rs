//! Control-flow graph analyses over lowered functions.
//!
//! The paper operates at call-graph granularity but notes (§V) that the
//! framework "can be easily extended to include finer granularity CFG
//! nodes". This module provides the block-level view: predecessors and
//! successors, reachability, unreachable-block detection, and loop-header
//! (back-edge) identification — useful both for diagnostics and for
//! future basic-block-level instrumentation.

use crate::ir::{BlockId, FuncBody};
use std::collections::{BTreeSet, VecDeque};

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG for `func`.
    pub fn build(func: &FuncBody) -> Cfg {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, block) in func.blocks.iter().enumerate() {
            for s in block.term.0.successors() {
                succs[i].push(s);
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        Cfg { succs, preds }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks (never produced by lowering).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks reachable from the entry, in BFS order.
    pub fn reachable(&self) -> Vec<BlockId> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut seen = BTreeSet::from([BlockId(0)]);
        let mut order = Vec::new();
        let mut queue = VecDeque::from([BlockId(0)]);
        while let Some(b) = queue.pop_front() {
            order.push(b);
            for &s in self.successors(b) {
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// Blocks that no path from the entry reaches. Lowering produces
    /// these only for source-level dead code (e.g. statements after a
    /// `return` inside a block are skipped, but an `if` with both arms
    /// returning leaves its join block unreachable).
    pub fn unreachable_blocks(&self) -> Vec<BlockId> {
        let reach: BTreeSet<BlockId> = self.reachable().into_iter().collect();
        (0..self.len() as u32)
            .map(BlockId)
            .filter(|b| !reach.contains(b))
            .collect()
    }

    /// Back edges `(from, to)` where `to` is an ancestor of `from` in the
    /// DFS tree — each `to` is a loop header.
    pub fn back_edges(&self) -> Vec<(BlockId, BlockId)> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.len()];
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        // Iterative DFS with an explicit finish marker.
        let mut stack = vec![(BlockId(0), false)];
        while let Some((b, finished)) = stack.pop() {
            if finished {
                color[b.index()] = Color::Black;
                continue;
            }
            if color[b.index()] != Color::White {
                continue;
            }
            color[b.index()] = Color::Grey;
            stack.push((b, true));
            for &s in self.successors(b) {
                match color[s.index()] {
                    Color::Grey => out.push((b, s)),
                    Color::White => stack.push((s, false)),
                    Color::Black => {}
                }
            }
        }
        out
    }

    /// Loop headers: targets of back edges, deduplicated.
    pub fn loop_headers(&self) -> Vec<BlockId> {
        let mut headers: Vec<BlockId> = self.back_edges().into_iter().map(|(_, to)| to).collect();
        headers.sort_unstable();
        headers.dedup();
        headers
    }

    /// True when `func` contains a loop.
    pub fn has_loop(&self) -> bool {
        !self.back_edges().is_empty()
    }

    /// Immediate dominators (Cooper–Harvey–Kennedy iterative algorithm).
    /// `idom[entry] == entry`; unreachable blocks have no entry in the
    /// returned map.
    pub fn immediate_dominators(&self) -> std::collections::BTreeMap<BlockId, BlockId> {
        use std::collections::BTreeMap;
        let order = self.reachable(); // reverse-postorder approximation: BFS order
        let mut rpo_index: BTreeMap<BlockId, usize> = BTreeMap::new();
        for (i, b) in order.iter().enumerate() {
            rpo_index.insert(*b, i);
        }
        let mut idom: BTreeMap<BlockId, BlockId> = BTreeMap::new();
        if order.is_empty() {
            return idom;
        }
        let entry = order[0];
        idom.insert(entry, entry);
        let intersect = |idom: &BTreeMap<BlockId, BlockId>, mut a: BlockId, mut b: BlockId| {
            while a != b {
                while rpo_index[&a] > rpo_index[&b] {
                    a = idom[&a];
                }
                while rpo_index[&b] > rpo_index[&a] {
                    b = idom[&b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in self.predecessors(b) {
                    if !idom.contains_key(&p) {
                        continue; // predecessor not yet processed (or unreachable)
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(n) = new_idom {
                    if idom.get(&b) != Some(&n) {
                        idom.insert(b, n);
                        changed = true;
                    }
                }
            }
        }
        idom
    }

    /// True if `a` dominates `b` (every entry→`b` path passes `a`).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let idom = self.immediate_dominators();
        let entry = BlockId(0);
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == entry {
                return a == entry;
            }
            match idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str, func: &str) -> Cfg {
        let p = minic::parse_program(src).unwrap();
        let m = crate::lower(&p).unwrap();
        Cfg::build(m.function_by_name(func).unwrap())
    }

    #[test]
    fn straight_line_has_no_loops() {
        let cfg = cfg_of("fn main() -> int { let a: int = 1; return a + 1; }", "main");
        assert!(!cfg.has_loop());
        assert!(cfg.unreachable_blocks().is_empty());
        assert_eq!(cfg.reachable().len(), cfg.len());
    }

    #[test]
    fn while_loop_has_header_and_backedge() {
        let cfg = cfg_of(
            "fn main() { let i: int = 0; while (i < 5) { i = i + 1; } }",
            "main",
        );
        assert!(cfg.has_loop());
        assert_eq!(cfg.loop_headers().len(), 1);
        let header = cfg.loop_headers()[0];
        // The header has two predecessors: entry and the loop body.
        assert_eq!(cfg.predecessors(header).len(), 2);
    }

    #[test]
    fn nested_loops_have_two_headers() {
        let cfg = cfg_of(
            r#"fn main() {
                let i: int = 0;
                while (i < 3) {
                    let j: int = 0;
                    while (j < 3) { j = j + 1; }
                    i = i + 1;
                }
            }"#,
            "main",
        );
        assert_eq!(cfg.loop_headers().len(), 2);
    }

    #[test]
    fn both_arms_returning_leaves_join_unreachable() {
        let cfg = cfg_of(
            r#"fn f(x: int) -> int {
                if (x > 0) { return 1; } else { return 2; }
            }
            fn main() { print(f(1)); }"#,
            "f",
        );
        // The join block after the if is never entered.
        assert!(!cfg.unreachable_blocks().is_empty());
    }

    #[test]
    fn branch_successors_and_predecessors_are_consistent() {
        let cfg = cfg_of(
            "fn main() { let x: int = 1; if (x > 0) { print(1); } else { print(2); } }",
            "main",
        );
        for b in 0..cfg.len() as u32 {
            let b = BlockId(b);
            for &s in cfg.successors(b) {
                assert!(cfg.predecessors(s).contains(&b));
            }
            for &p in cfg.predecessors(b) {
                assert!(cfg.successors(p).contains(&b));
            }
        }
    }

    #[test]
    fn dominators_of_a_diamond() {
        // entry -> {then, else} -> join: entry dominates everything; the
        // join is dominated by entry only (not by either arm).
        let cfg = cfg_of(
            "fn main() { let x: int = 1; if (x > 0) { print(1); } else { print(2); } print(3); }",
            "main",
        );
        let idom = cfg.immediate_dominators();
        let entry = BlockId(0);
        assert_eq!(idom[&entry], entry);
        for b in cfg.reachable() {
            assert!(cfg.dominates(entry, b), "entry dominates {b}");
        }
        // Find the join block: the reachable block with two predecessors.
        let join = cfg
            .reachable()
            .into_iter()
            .find(|&b| cfg.predecessors(b).len() == 2 && !cfg.loop_headers().contains(&b))
            .expect("join block");
        assert_eq!(idom[&join], entry, "join's idom is the branch block");
    }

    #[test]
    fn loop_header_dominates_its_body() {
        let cfg = cfg_of(
            "fn main() { let i: int = 0; while (i < 5) { i = i + 1; } print(i); }",
            "main",
        );
        let header = cfg.loop_headers()[0];
        for (from, to) in cfg.back_edges() {
            assert_eq!(to, header);
            assert!(cfg.dominates(header, from), "header dominates latch");
        }
    }

    #[test]
    fn benchapp_fault_functions_contain_loops() {
        // Every benchmark's vulnerable function is loop-based (the
        // paper's explosion source); spot-check one here without a
        // cyclic dependency on benchapps.
        let cfg = cfg_of(
            r#"fn convert(s: str) {
                let b: buf[4];
                let i: int = 0;
                while (char_at(s, i) != 0) { buf_set(b, i, 1); i = i + 1; }
            }
            fn main() { convert("x"); }"#,
            "convert",
        );
        assert!(cfg.has_loop());
    }
}
