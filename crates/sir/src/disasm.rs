//! Human-readable SIR disassembly, for debugging lowering and the engines.

use crate::ir::*;
use std::fmt::Write as _;

/// Renders an entire module as text.
///
/// # Example
///
/// ```
/// let p = minic::parse_program("fn main() -> int { return 1 + 2; }")?;
/// let m = sir::lower(&p)?;
/// let text = sir::disassemble(&m);
/// assert!(text.contains("fn main"));
/// assert!(text.contains("ret"));
/// # Ok::<(), minic::Error>(())
/// ```
pub fn disassemble(module: &Module) -> String {
    let mut out = String::new();
    for (i, g) in module.globals.iter().enumerate() {
        let _ = writeln!(out, "global g{i} {} : {} = {:?}", g.name, g.ty, g.init);
    }
    for (i, inp) in module.inputs.iter().enumerate() {
        let _ = writeln!(out, "input i{i} {:?} : {:?}", inp.name, inp.kind);
    }
    for f in &module.funcs {
        let params: Vec<String> = f.params.iter().map(|(n, t)| format!("{n}: {t}")).collect();
        let _ = writeln!(
            out,
            "\nfn {}({}) [regs={}]",
            f.name,
            params.join(", "),
            f.num_regs
        );
        for (bi, block) in f.blocks.iter().enumerate() {
            let _ = writeln!(out, "b{bi}:");
            for (inst, span) in &block.insts {
                let _ = writeln!(out, "    {}    ; {span}", render_inst(inst));
            }
            let (term, span) = &block.term;
            let _ = writeln!(out, "    {}    ; {span}", render_term(term));
        }
    }
    out
}

fn render_inst(inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value } => format!("{dst} = const {value:?}"),
        Inst::Move { dst, src } => format!("{dst} = {src}"),
        Inst::Bin { op, dst, a, b } => format!("{dst} = {a} {op} {b}"),
        Inst::Not { dst, src } => format!("{dst} = not {src}"),
        Inst::Neg { dst, src } => format!("{dst} = neg {src}"),
        Inst::LoadGlobal { dst, global } => format!("{dst} = load {global}"),
        Inst::StoreGlobal { global, src } => format!("store {global}, {src}"),
        Inst::Call { dst, func, args } => {
            let args: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            match dst {
                Some(d) => format!("{d} = call {func}({})", args.join(", ")),
                None => format!("call {func}({})", args.join(", ")),
            }
        }
        Inst::AllocBuf { dst, cap } => format!("{dst} = allocbuf {cap}"),
        Inst::BufSet { buf, idx, val } => format!("bufset {buf}[{idx}] = {val}"),
        Inst::BufGet { dst, buf, idx } => format!("{dst} = bufget {buf}[{idx}]"),
        Inst::BufCap { dst, buf } => format!("{dst} = bufcap {buf}"),
        Inst::StrAt { dst, s, idx } => format!("{dst} = strat {s}[{idx}]"),
        Inst::StrLen { dst, s } => format!("{dst} = strlen {s}"),
        Inst::Input { dst, input } => format!("{dst} = input {input}"),
        Inst::Print { args } => {
            let args: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            format!("print {}", args.join(", "))
        }
        Inst::Exit { code } => format!("exit {code}"),
        Inst::Assert { cond } => format!("assert {cond}"),
        Inst::Alloc { dst, size } => format!("{dst} = alloc {size}"),
        Inst::Free { buf } => format!("free {buf}"),
        Inst::Format { fmt } => format!("format {fmt}"),
    }
}

fn render_term(term: &Terminator) -> String {
    match term {
        Terminator::Jump(b) => format!("jmp {b}"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => format!("br {cond} ? {then_bb} : {else_bb}"),
        Terminator::Return(Some(r)) => format!("ret {r}"),
        Terminator::Return(None) => "ret".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    #[test]
    fn disassembly_mentions_all_functions_and_inputs() {
        let p = minic::parse_program(
            r#"
            global g: int = 1;
            fn helper(x: int) -> int { return x; }
            fn main() { let s: str = input_str("req", 16); print(helper(g), s); }
            "#,
        )
        .unwrap();
        let m = lower(&p).unwrap();
        let text = disassemble(&m);
        assert!(text.contains("fn helper"));
        assert!(text.contains("fn main"));
        assert!(text.contains("input i0 \"req\""));
        assert!(text.contains("global g0 g"));
        assert!(text.contains("br ") || text.contains("jmp ") || text.contains("ret"));
    }

    #[test]
    fn every_instruction_variant_renders() {
        // Smoke test over a program that exercises most instructions.
        let p = minic::parse_program(
            r#"
            global g: int = 0;
            fn main() {
                let b: buf[8];
                let i: int = input_int("n");
                buf_set(b, 0, i);
                let v: int = buf_get(b, 0);
                let c: int = buf_cap(b);
                let s: str = "ab";
                let l: int = len(s);
                let ch: int = char_at(s, 0);
                g = v + c + l + ch;
                let h: buf = alloc(i);
                buf_set(h, 0, 1);
                format(s);
                free(h);
                assert(g > -1000);
                if (!(g == 0) && g > -5) { print(g); }
                exit(0);
            }
            "#,
        )
        .unwrap();
        let m = lower(&p).unwrap();
        let text = disassemble(&m);
        for needle in [
            "allocbuf", "bufset", "bufget", "bufcap", "strlen", "strat", "input", "assert",
            "print", "exit", "store", "load", "= alloc ", "free ", "format ",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
