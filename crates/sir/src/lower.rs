//! AST → SIR lowering.
//!
//! Notable choices:
//!
//! * Short-circuit `&&`/`||` are lowered to control flow, so a symbolic
//!   path condition is always a conjunction of *atomic* comparisons —
//!   the same property KLEE gets from LLVM's `br` lowering.
//! * Named locals and parameters keep dedicated registers with debug
//!   names so the program monitor can log them by source name.
//! * Named inputs (`input_str`/`input_int`) are interned per module; the
//!   same name always maps to the same [`InputId`].

use crate::ir::*;
use minic::ast::{Builtin, ExprKind, StmtKind};
use minic::{BinOp, Error, Expr, Program, Result, Span, Stmt, Type};
use std::collections::HashMap;

/// Lowers a checked MiniC program to a SIR module.
///
/// # Errors
///
/// Returns an error if the program re-declares an input name with a
/// different kind or capacity, or uses a `buf` return type.
pub fn lower(program: &Program) -> Result<Module> {
    let mut module = Module::default();

    for g in &program.globals {
        let init = match (&g.init, g.ty) {
            (Some(e), _) => match &e.kind {
                ExprKind::Int(v) => ConstValue::Int(*v),
                ExprKind::Bool(b) => ConstValue::Bool(*b),
                ExprKind::Str(s) => ConstValue::Str(s.clone()),
                _ => unreachable!("checker enforces literal global initializers"),
            },
            (None, Type::Int) => ConstValue::Int(0),
            (None, Type::Bool) => ConstValue::Bool(false),
            (None, Type::Str) => ConstValue::Str(String::new()),
            (None, Type::Buf(_)) => unreachable!("checker rejects global buffers"),
        };
        module.globals.push(GlobalDef {
            name: g.name.clone(),
            ty: g.ty,
            init,
        });
    }

    let fn_ids: HashMap<&str, FuncId> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), FuncId(i as u32)))
        .collect();

    for f in &program.functions {
        if matches!(f.ret, Some(Type::Buf(_))) {
            return Err(Error::new(f.span, "functions cannot return buffers"));
        }
        let mut lowerer = FnLowerer::new(program, &fn_ids, &mut module);
        let body = lowerer.lower_fn(f)?;
        module.funcs.push(body);
    }

    module.main = *fn_ids.get("main").expect("checker guarantees main exists");
    Ok(module)
}

struct FnLowerer<'a> {
    program: &'a Program,
    fn_ids: &'a HashMap<&'a str, FuncId>,
    module: &'a mut Module,
    blocks: Vec<BasicBlock>,
    /// Block currently being appended to; `None` after a terminator.
    current: BlockId,
    terminated: bool,
    next_reg: u32,
    vars: HashMap<String, Reg>,
    reg_names: Vec<Option<String>>,
    /// `(continue_target, break_target)` per enclosing loop.
    loops: Vec<(BlockId, BlockId)>,
}

impl<'a> FnLowerer<'a> {
    fn new(
        program: &'a Program,
        fn_ids: &'a HashMap<&'a str, FuncId>,
        module: &'a mut Module,
    ) -> Self {
        FnLowerer {
            program,
            fn_ids,
            module,
            blocks: Vec::new(),
            current: BlockId(0),
            terminated: false,
            next_reg: 0,
            vars: HashMap::new(),
            reg_names: Vec::new(),
            loops: Vec::new(),
        }
    }

    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        self.reg_names.push(None);
        r
    }

    fn named(&mut self, name: &str) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        self.reg_names.push(Some(name.to_owned()));
        self.vars.insert(name.to_owned(), r);
        r
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            insts: Vec::new(),
            term: (Terminator::Return(None), Span::default()),
        });
        id
    }

    fn emit(&mut self, inst: Inst, span: Span) {
        debug_assert!(!self.terminated, "emit into terminated block");
        self.blocks[self.current.index()].insts.push((inst, span));
    }

    fn terminate(&mut self, term: Terminator, span: Span) {
        debug_assert!(!self.terminated, "double terminator");
        self.blocks[self.current.index()].term = (term, span);
        self.terminated = true;
    }

    fn switch_to(&mut self, block: BlockId) {
        self.current = block;
        self.terminated = false;
    }

    fn lower_fn(&mut self, f: &minic::Function) -> Result<FuncBody> {
        for p in &f.params {
            self.named(&p.name);
        }
        let entry = self.new_block();
        self.switch_to(entry);
        // Pre-allocate every named local at function entry with its
        // type default (C-style stack frame with zero initialization).
        // MiniC scoping is function-level, so a local declared in one
        // branch may legally be *read* on a path that never executed its
        // `let`; entry initialization makes that read well-defined.
        let mut locals = Vec::new();
        collect_locals(&f.body, &mut locals);
        for (name, ty) in &locals {
            let dst = self.named(name);
            match ty {
                Type::Buf(Some(cap)) => self.emit(Inst::AllocBuf { dst, cap: *cap }, f.span),
                // Dynamic handles (`let h: buf = alloc(n);`) stay unbound
                // until their `let` runs; reading one on a path that never
                // executed the `let` is an invalid-handle (use-after-free
                // class) fault, which both VMs detect.
                Type::Buf(None) => {}
                Type::Int => self.emit(
                    Inst::Const {
                        dst,
                        value: ConstValue::Int(0),
                    },
                    f.span,
                ),
                Type::Bool => self.emit(
                    Inst::Const {
                        dst,
                        value: ConstValue::Bool(false),
                    },
                    f.span,
                ),
                Type::Str => self.emit(
                    Inst::Const {
                        dst,
                        value: ConstValue::Str(String::new()),
                    },
                    f.span,
                ),
            }
        }
        self.lower_block(&f.body)?;
        if !self.terminated {
            self.default_return(f);
        }
        Ok(FuncBody {
            name: f.name.clone(),
            params: f.params.iter().map(|p| (p.name.clone(), p.ty)).collect(),
            ret: f.ret,
            blocks: std::mem::take(&mut self.blocks),
            num_regs: self.next_reg,
            reg_names: std::mem::take(&mut self.reg_names),
            span: f.span,
        })
    }

    /// Emits `return <default>` matching the function's return type, used
    /// when control can fall off the end of the body (C semantics).
    fn default_return(&mut self, f: &minic::Function) {
        let span = f.span;
        match f.ret {
            None => self.terminate(Terminator::Return(None), span),
            Some(ty) => {
                let r = self.fresh();
                let value = match ty {
                    Type::Int => ConstValue::Int(0),
                    Type::Bool => ConstValue::Bool(false),
                    Type::Str => ConstValue::Str(String::new()),
                    Type::Buf(_) => unreachable!("buf returns rejected"),
                };
                self.emit(Inst::Const { dst: r, value }, span);
                self.terminate(Terminator::Return(Some(r)), span);
            }
        }
    }

    fn lower_block(&mut self, block: &minic::Block) -> Result<()> {
        for stmt in &block.stmts {
            if self.terminated {
                // Unreachable code after return/break/continue: skip. Kept
                // lenient so handwritten benchmark programs may use early
                // returns inside branches freely.
                break;
            }
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<()> {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                // The register was allocated and default-initialized at
                // function entry; the `let` itself only runs the
                // initializer (sized buffers are allocation-hoisted no-ops;
                // dynamic `buf` handles bind their initializer here).
                match ty {
                    Type::Buf(Some(_)) => {}
                    _ => {
                        if let Some(e) = init {
                            let value = self.lower_expr(e)?;
                            let dst = *self.vars.get(name).expect("local pre-allocated at entry");
                            self.emit(Inst::Move { dst, src: value }, span);
                        }
                    }
                }
                Ok(())
            }
            StmtKind::Assign { name, value } => {
                let src = self.lower_expr(value)?;
                if let Some(&dst) = self.vars.get(name) {
                    self.emit(Inst::Move { dst, src }, span);
                } else {
                    let global = self
                        .module
                        .global_id(name)
                        .expect("checker resolves assignment targets");
                    self.emit(Inst::StoreGlobal { global, src }, span);
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.lower_expr(cond)?;
                let then_bb = self.new_block();
                let end_bb = self.new_block();
                let else_bb = if else_blk.is_some() {
                    self.new_block()
                } else {
                    end_bb
                };
                self.terminate(
                    Terminator::Branch {
                        cond: c,
                        then_bb,
                        else_bb,
                    },
                    span,
                );
                self.switch_to(then_bb);
                self.lower_block(then_blk)?;
                if !self.terminated {
                    self.terminate(Terminator::Jump(end_bb), span);
                }
                if let Some(eb) = else_blk {
                    self.switch_to(else_bb);
                    self.lower_block(eb)?;
                    if !self.terminated {
                        self.terminate(Terminator::Jump(end_bb), span);
                    }
                }
                self.switch_to(end_bb);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let end_bb = self.new_block();
                self.terminate(Terminator::Jump(header), span);
                self.switch_to(header);
                let c = self.lower_expr(cond)?;
                self.terminate(
                    Terminator::Branch {
                        cond: c,
                        then_bb: body_bb,
                        else_bb: end_bb,
                    },
                    span,
                );
                self.switch_to(body_bb);
                self.loops.push((header, end_bb));
                self.lower_block(body)?;
                self.loops.pop();
                if !self.terminated {
                    self.terminate(Terminator::Jump(header), span);
                }
                self.switch_to(end_bb);
                Ok(())
            }
            StmtKind::Return(value) => {
                let r = match value {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.terminate(Terminator::Return(r), span);
                Ok(())
            }
            StmtKind::Assert(cond) => {
                let c = self.lower_expr(cond)?;
                self.emit(Inst::Assert { cond: c }, span);
                Ok(())
            }
            StmtKind::Break => {
                let (_, end) = *self
                    .loops
                    .last()
                    .ok_or_else(|| Error::new(span, "`break` outside of a loop"))?;
                self.terminate(Terminator::Jump(end), span);
                Ok(())
            }
            StmtKind::Continue => {
                let (header, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| Error::new(span, "`continue` outside of a loop"))?;
                self.terminate(Terminator::Jump(header), span);
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.lower_call_stmt(e)?;
                Ok(())
            }
        }
    }

    /// Lowers a call in statement position, discarding any return value.
    fn lower_call_stmt(&mut self, e: &Expr) -> Result<()> {
        let ExprKind::Call { callee, args } = &e.kind else {
            unreachable!("checker enforces call statements");
        };
        if Builtin::from_name(callee).is_some() {
            self.lower_builtin(e.span, callee, args, false)?;
        } else {
            let arg_regs = self.lower_args(args)?;
            let func = self.fn_ids[callee.as_str()];
            self.emit(
                Inst::Call {
                    dst: None,
                    func,
                    args: arg_regs,
                },
                e.span,
            );
        }
        Ok(())
    }

    fn lower_args(&mut self, args: &[Expr]) -> Result<Vec<Reg>> {
        args.iter().map(|a| self.lower_expr(a)).collect()
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<Reg> {
        let span = e.span;
        match &e.kind {
            ExprKind::Int(v) => {
                let dst = self.fresh();
                self.emit(
                    Inst::Const {
                        dst,
                        value: ConstValue::Int(*v),
                    },
                    span,
                );
                Ok(dst)
            }
            ExprKind::Bool(b) => {
                let dst = self.fresh();
                self.emit(
                    Inst::Const {
                        dst,
                        value: ConstValue::Bool(*b),
                    },
                    span,
                );
                Ok(dst)
            }
            ExprKind::Str(s) => {
                let dst = self.fresh();
                self.emit(
                    Inst::Const {
                        dst,
                        value: ConstValue::Str(s.clone()),
                    },
                    span,
                );
                Ok(dst)
            }
            ExprKind::Var(name) => {
                if let Some(&r) = self.vars.get(name) {
                    Ok(r)
                } else {
                    let global = self
                        .module
                        .global_id(name)
                        .expect("checker resolves variables");
                    let dst = self.fresh();
                    self.emit(Inst::LoadGlobal { dst, global }, span);
                    Ok(dst)
                }
            }
            ExprKind::Un { op, operand } => {
                let src = self.lower_expr(operand)?;
                let dst = self.fresh();
                match op {
                    minic::UnOp::Neg => self.emit(Inst::Neg { dst, src }, span),
                    minic::UnOp::Not => self.emit(Inst::Not { dst, src }, span),
                }
                Ok(dst)
            }
            ExprKind::Bin { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => self.lower_short_circuit(*op, lhs, rhs, span),
                _ => {
                    let a = self.lower_expr(lhs)?;
                    let b = self.lower_expr(rhs)?;
                    let dst = self.fresh();
                    self.emit(Inst::Bin { op: *op, dst, a, b }, span);
                    Ok(dst)
                }
            },
            ExprKind::Call { callee, args } => {
                if Builtin::from_name(callee).is_some() {
                    Ok(self
                        .lower_builtin(span, callee, args, true)?
                        .expect("value-position builtin produces a value"))
                } else {
                    let arg_regs = self.lower_args(args)?;
                    let func = self.fn_ids[callee.as_str()];
                    let has_ret = self.program.function(callee).and_then(|f| f.ret).is_some();
                    debug_assert!(has_ret, "checker rejects void calls in value position");
                    let dst = self.fresh();
                    self.emit(
                        Inst::Call {
                            dst: Some(dst),
                            func,
                            args: arg_regs,
                        },
                        span,
                    );
                    Ok(dst)
                }
            }
        }
    }

    /// Lowers `lhs && rhs` / `lhs || rhs` with short-circuit control flow.
    fn lower_short_circuit(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
    ) -> Result<Reg> {
        let result = self.fresh();
        let l = self.lower_expr(lhs)?;
        self.emit(
            Inst::Move {
                dst: result,
                src: l,
            },
            span,
        );
        let rhs_bb = self.new_block();
        let end_bb = self.new_block();
        let (then_bb, else_bb) = match op {
            BinOp::And => (rhs_bb, end_bb),
            BinOp::Or => (end_bb, rhs_bb),
            _ => unreachable!(),
        };
        self.terminate(
            Terminator::Branch {
                cond: l,
                then_bb,
                else_bb,
            },
            span,
        );
        self.switch_to(rhs_bb);
        let r = self.lower_expr(rhs)?;
        self.emit(
            Inst::Move {
                dst: result,
                src: r,
            },
            span,
        );
        self.terminate(Terminator::Jump(end_bb), span);
        self.switch_to(end_bb);
        Ok(result)
    }

    /// Lowers a builtin call. Returns `Some(reg)` when the builtin
    /// produces a value and `want_value` is true.
    fn lower_builtin(
        &mut self,
        span: Span,
        callee: &str,
        args: &[Expr],
        want_value: bool,
    ) -> Result<Option<Reg>> {
        let b = Builtin::from_name(callee).expect("caller checked");
        match b {
            Builtin::Len => {
                let s = self.lower_expr(&args[0])?;
                let dst = self.fresh();
                self.emit(Inst::StrLen { dst, s }, span);
                Ok(Some(dst))
            }
            Builtin::CharAt => {
                let s = self.lower_expr(&args[0])?;
                let idx = self.lower_expr(&args[1])?;
                let dst = self.fresh();
                self.emit(Inst::StrAt { dst, s, idx }, span);
                Ok(Some(dst))
            }
            Builtin::BufSet => {
                let buf = self.lower_expr(&args[0])?;
                let idx = self.lower_expr(&args[1])?;
                let val = self.lower_expr(&args[2])?;
                self.emit(Inst::BufSet { buf, idx, val }, span);
                Ok(None)
            }
            Builtin::BufGet => {
                let buf = self.lower_expr(&args[0])?;
                let idx = self.lower_expr(&args[1])?;
                let dst = self.fresh();
                self.emit(Inst::BufGet { dst, buf, idx }, span);
                Ok(Some(dst))
            }
            Builtin::BufCap => {
                let buf = self.lower_expr(&args[0])?;
                let dst = self.fresh();
                self.emit(Inst::BufCap { dst, buf }, span);
                Ok(Some(dst))
            }
            Builtin::InputStr | Builtin::InputInt => {
                let ExprKind::Str(name) = &args[0].kind else {
                    unreachable!("checker enforces literal input names");
                };
                let kind = match b {
                    Builtin::InputStr => {
                        let ExprKind::Int(cap) = &args[1].kind else {
                            unreachable!("checker enforces literal input capacity");
                        };
                        if !(1..=u32::MAX as i64).contains(cap) {
                            return Err(Error::new(span, "input capacity must be positive"));
                        }
                        InputKind::Str { cap: *cap as u32 }
                    }
                    _ => InputKind::Int,
                };
                let input = match self.module.input_id(name) {
                    Some(id) => {
                        let existing = &self.module.inputs[id.index()];
                        if existing.kind != kind {
                            return Err(Error::new(
                                span,
                                format!("input `{name}` re-declared with a different kind"),
                            ));
                        }
                        id
                    }
                    None => {
                        let id = InputId(self.module.inputs.len() as u32);
                        self.module.inputs.push(InputDef {
                            name: name.clone(),
                            kind,
                        });
                        id
                    }
                };
                let dst = self.fresh();
                self.emit(Inst::Input { dst, input }, span);
                Ok(Some(dst))
            }
            Builtin::Print => {
                let arg_regs = self.lower_args(args)?;
                self.emit(Inst::Print { args: arg_regs }, span);
                Ok(None)
            }
            Builtin::Exit => {
                let code = self.lower_expr(&args[0])?;
                self.emit(Inst::Exit { code }, span);
                Ok(None)
            }
            Builtin::Alloc => {
                let size = self.lower_expr(&args[0])?;
                let dst = self.fresh();
                self.emit(Inst::Alloc { dst, size }, span);
                Ok(Some(dst))
            }
            Builtin::Free => {
                let buf = self.lower_expr(&args[0])?;
                self.emit(Inst::Free { buf }, span);
                Ok(None)
            }
            Builtin::Format => {
                let fmt = self.lower_expr(&args[0])?;
                self.emit(Inst::Format { fmt }, span);
                Ok(None)
            }
        }
        .map(|r| if want_value { r } else { None })
    }
}

/// Collects every `let` declaration in source order (the checker has
/// already rejected duplicates).
fn collect_locals(block: &minic::Block, out: &mut Vec<(String, Type)>) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Let { name, ty, .. } => out.push((name.clone(), *ty)),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                collect_locals(then_blk, out);
                if let Some(e) = else_blk {
                    collect_locals(e, out);
                }
            }
            StmtKind::While { body, .. } => collect_locals(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    fn lower_src(src: &str) -> Module {
        let p = minic::parse_program(src).unwrap();
        let m = lower(&p).unwrap();
        verify(&m).unwrap();
        m
    }

    #[test]
    fn lowers_arithmetic_return() {
        let m = lower_src("fn main() -> int { return 2 + 3 * 4; }");
        let f = m.function_by_name("main").unwrap();
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.blocks[0].term.0, Terminator::Return(Some(_))));
    }

    #[test]
    fn short_circuit_becomes_control_flow() {
        let m = lower_src(
            "fn main() -> int { let a: int = 1; if (a > 0 && a < 10) { return 1; } return 0; }",
        );
        let f = m.function_by_name("main").unwrap();
        // &&-lowering introduces extra blocks beyond the plain if/else.
        assert!(
            f.blocks.len() >= 4,
            "expected >=4 blocks, got {}",
            f.blocks.len()
        );
        // No Bin instruction may carry And/Or.
        for b in &f.blocks {
            for (i, _) in &b.insts {
                if let Inst::Bin { op, .. } = i {
                    assert!(!matches!(op, BinOp::And | BinOp::Or));
                }
            }
        }
    }

    #[test]
    fn while_loop_has_backedge() {
        let m = lower_src("fn main() { let i: int = 0; while (i < 5) { i = i + 1; } return; }");
        let f = m.function_by_name("main").unwrap();
        let mut has_backedge = false;
        for (bi, b) in f.blocks.iter().enumerate() {
            for succ in b.term.0.successors() {
                if succ.index() <= bi {
                    has_backedge = true;
                }
            }
        }
        assert!(has_backedge);
    }

    #[test]
    fn inputs_are_interned_by_name() {
        let m = lower_src(
            r#"fn main() { let a: str = input_str("x", 8); let b: str = input_str("x", 8); print(a, b); }"#,
        );
        assert_eq!(m.inputs.len(), 1);
        assert_eq!(m.inputs[0].kind, InputKind::Str { cap: 8 });
    }

    #[test]
    fn conflicting_input_kinds_rejected() {
        let p = minic::parse_program(
            r#"fn main() { let a: str = input_str("x", 8); let b: int = input_int("x"); print(a, b); }"#,
        )
        .unwrap();
        assert!(lower(&p).is_err());
    }

    #[test]
    fn break_continue_lower_to_jumps() {
        lower_src(
            r#"fn main() {
                let i: int = 0;
                while (true) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i > 5) { continue; }
                }
                return;
            }"#,
        );
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        let p = minic::parse_program("fn main() { break; }").unwrap();
        assert!(lower(&p).is_err());
    }

    #[test]
    fn globals_get_default_inits() {
        let m = lower_src("global g: int; global s: str; fn main() { return; }");
        assert_eq!(m.globals[0].init, ConstValue::Int(0));
        assert_eq!(m.globals[1].init, ConstValue::Str(String::new()));
    }

    #[test]
    fn params_occupy_leading_registers() {
        let m = lower_src(
            "fn f(a: int, b: str) -> int { return a; } fn main() { print(f(1, \"x\")); }",
        );
        let f = m.function_by_name("f").unwrap();
        assert_eq!(f.reg_names[0].as_deref(), Some("a"));
        assert_eq!(f.reg_names[1].as_deref(), Some("b"));
    }

    #[test]
    fn missing_return_gets_default() {
        let m = lower_src(
            "fn f(x: int) -> int { if (x > 0) { return 1; } } fn main() { print(f(0)); }",
        );
        let f = m.function_by_name("f").unwrap();
        // Fall-through path ends in Return(Some(default)).
        let last = f.blocks.last().unwrap();
        assert!(matches!(last.term.0, Terminator::Return(Some(_))));
    }
}
