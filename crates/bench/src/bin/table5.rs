//! Regenerates **Table V** (top-10 predicates for polymorph) and the
//! **Figure 8** listing (instrumented locations and variables).

use bench::{Table, PAPER_SEED};
use benchapps::{generate_corpus, CorpusSpec};
use statsym_core::{LogCorpus, PredicateSet};
use std::collections::BTreeSet;

fn main() {
    let app = benchapps::polymorph();
    let logs = generate_corpus(
        &app,
        CorpusSpec {
            n_correct: 100,
            n_faulty: 100,
            sampling_rate: 0.3,
            seed: PAPER_SEED,
        },
    );
    let corpus = LogCorpus::build(&logs);

    // Figure 8: instrumented locations and variables.
    println!("Fig. 8: Instrumented locations and variables in polymorph");
    for (i, loc) in corpus.locations.iter().enumerate() {
        println!("  L{}: {loc}", i + 1);
    }
    let vars: BTreeSet<String> = corpus
        .observations
        .keys()
        .map(|(_, var)| var.to_string())
        .collect();
    println!(
        "  variables: {}",
        vars.into_iter().collect::<Vec<_>>().join(", ")
    );
    println!();

    // Table V: top-10 predicates.
    let preds = PredicateSet::build(&corpus);
    let mut table = Table::new(
        "TABLE V: top 10 predicates for polymorph (30% sampling)",
        &["No.", "Predicate", "Loc.", "Score"],
    );
    for (i, p) in preds.top(10).iter().enumerate() {
        table.row(&[
            format!("P{}", i + 1),
            p.render(),
            p.loc.to_string(),
            format!("{:.3}", p.score),
        ]);
    }
    println!("{}", table.render());
}
