//! Regenerates **Figure 9**: the ranked candidate paths for polymorph,
//! with the predicates attached to each node.

use bench::PAPER_SEED;
use benchapps::{generate_corpus, CorpusSpec};
use statsym_core::pipeline::StatSym;

fn main() {
    let app = benchapps::polymorph();
    let logs = generate_corpus(
        &app,
        CorpusSpec {
            n_correct: 100,
            n_faulty: 100,
            sampling_rate: 0.3,
            seed: PAPER_SEED,
        },
    );
    let analysis = StatSym::default().analyze(&logs);
    println!("Fig. 9: candidate paths for polymorph (top ranked first)");
    let Some(cands) = &analysis.candidates else {
        println!("  (no candidates)");
        return;
    };
    println!(
        "  skeleton ({} nodes, avg score {:.3}): {}",
        cands.skeleton.len(),
        cands.skeleton.avg_score,
        cands
            .skeleton
            .nodes
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    println!("  detours: {}", cands.detours.len());
    for (i, path) in cands.paths.iter().enumerate() {
        println!(
            "  candidate #{i} (score {:.3}, {} nodes): {}",
            path.score,
            path.len(),
            path.render()
        );
        for node in &path.nodes {
            for p in &node.predicates {
                println!("      {} @ {}", p.render(), node.loc);
            }
        }
    }
}
