//! Steal-mode scaling bench: breaks the portfolio's 2-worker plateau
//! with solver-side independence slicing + unsat caching and the
//! work-stealing intra-candidate executor, emitting `BENCH_steal.json`.
//!
//! Two workloads:
//!
//! * **grep late-ranked hit** — the `BENCH_portfolio.json` workload
//!   (decoy candidates ranked ahead of the real one). The portfolio
//!   plateaus near the slowest single attempt because candidate-level
//!   parallelism is exhausted; the sweep here layers constraint
//!   slicing and a shared unsat cache on top, which collapse the decoy
//!   attempts' redundant solver search.
//! * **fork-heavy loop** — a single engine on a symbolically-bounded
//!   loop with variable-disjoint constraint families, sweeping the
//!   work-stealing executor's `state_workers` 1→8. The timed runs
//!   report the executor-vs-solver wall breakdown and the
//!   `solver.indep.*` / `solver.ucache.*` counters; the traced runs
//!   assert byte-identical traces at every swept worker count.
//!
//! Pass `--out <path>` to redirect the JSON report (default
//! `BENCH_steal.json`), `--sweep 1,2,4,8` to choose worker counts,
//! `--decoys <n>` to resize the grep workload, `--repeat <n>` for
//! best-of-n timing, and `--dump-traces <dir>` to write the
//! fork-heavy rendered trace per worker count (CI byte-compares them
//! with `cmp`).

use bench::{statsym_config, PAPER_SEED};
use benchapps::{generate_corpus, CorpusSpec};
use concrete::Measure;
use solver::{SolverConfig, UnsatCache};
use statsym_core::pipeline::{StatSym, StatSymConfig};
use statsym_core::portfolio::run_portfolio;
use statsym_core::{AnalysisReport, CandidatePath, GuidanceConfig, PathNode, PredOp};
use statsym_telemetry::{render_trace, Clock, MemRecorder, NOOP};
use std::sync::Arc;
use std::time::Instant;
use symex::{Engine, EngineConfig, EngineStats, RunOutcome};

/// Hopeless candidates ranked ahead of the real ones.
const DECOYS: usize = 6;
/// Per-candidate step budget: decoys exhaust it, the winner does not.
const MAX_STEPS: u64 = 60_000;
/// Default sweep over worker counts.
const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The fork-heavy loop workload: a symbolically-bounded loop (every
/// iteration forks on the bound), two variable-disjoint branch families
/// inside the body (slicing splits their conjunctions into independent
/// components), and a repeatedly-revisited infeasible branch whose
/// first unsat verdict answers all later supersets via the unsat
/// cache. Fault-free, so every run drains the full path space and the
/// measured work is schedule-independent.
const FORK_HEAVY: &str = r#"
    fn main() {
        let n: int = input_int("n");
        let a: int = input_int("a");
        let b: int = input_int("b");
        let m: int = n;
        if (m > 7) { m = 7; }
        let acc: int = 0;
        let i: int = 0;
        if (a < 50) {
            while (i < m) {
                if (a + i > 40) { acc = acc + 1; } else { acc = acc + 2; }
                if (b - i < 3) { acc = acc + 3; }
                if (a > 60) { acc = acc + 99; }
                i = i + 1;
            }
        }
        assert(acc < 1000);
    }
"#;

fn grep_config(workers: usize) -> StatSymConfig {
    let base = statsym_config();
    StatSymConfig {
        workers,
        share_unsat_cache: true,
        auto_split_workers: true,
        engine: EngineConfig {
            max_steps: MAX_STEPS,
            solver: SolverConfig {
                slice: true,
                time_queries: true,
                ..SolverConfig::default()
            },
            ..base.engine
        },
        // The pinned pre-fault prefix emits many function events; a
        // large τ keeps decoy states alive until they reach the
        // poisoned fault region.
        guidance: GuidanceConfig {
            tau: 1_000_000,
            ..base.guidance
        },
        ..base
    }
}

/// A candidate inverting the analysis' top length separator at the
/// fault function's entry (see `bin/portfolio.rs` for the rationale).
fn decoy(analysis: &AnalysisReport) -> CandidatePath {
    let failure = analysis
        .failure_location
        .clone()
        .expect("analysis pinpoints the failure");
    let template = analysis
        .predicates
        .ranked
        .iter()
        .find(|p| !p.is_degenerate() && p.loc == failure && p.var.measure == Measure::Length)
        .expect("a length predicate at the failure point");
    let mut poison = template.clone();
    poison.op = PredOp::Lt;
    CandidatePath {
        nodes: vec![PathNode {
            loc: failure,
            predicates: vec![poison],
        }],
        score: 9.0,
    }
}

/// Sums the executor-vs-solver wall split over a run's engine stats:
/// `solver_us` is measured inside the solver (`time_queries`), the
/// executor share is everything else.
fn breakdown(wall_us: u64, stats: &[&EngineStats]) -> (u64, u64) {
    let solver_us: u64 = stats.iter().map(|s| s.solver.query_us).sum();
    (wall_us.saturating_sub(solver_us), solver_us)
}

struct Row {
    workers: usize,
    wall_s: f64,
    executor_us: u64,
    solver_us: u64,
    indep_queries: u64,
    indep_components: u64,
    indep_comp_hits: u64,
    ucache_sub_hits: u64,
    ucache_sup_hits: u64,
    ucache_stores: u64,
}

impl Row {
    fn json(&self, label: &str, baseline_s: f64) -> String {
        format!(
            "    {{\"{label}\": {}, \"wall_s\": {:.4}, \"speedup\": {:.3}, \
             \"executor_us\": {}, \"solver_us\": {}, \
             \"indep_queries\": {}, \"indep_components\": {}, \"indep_comp_hits\": {}, \
             \"ucache_sub_hits\": {}, \"ucache_sup_hits\": {}, \"ucache_stores\": {}}}",
            self.workers,
            self.wall_s,
            baseline_s / self.wall_s,
            self.executor_us,
            self.solver_us,
            self.indep_queries,
            self.indep_components,
            self.indep_comp_hits,
            self.ucache_sub_hits,
            self.ucache_sup_hits,
            self.ucache_stores,
        )
    }
}

fn sum_stats(stats: &[&EngineStats], wall_s: f64, workers: usize) -> Row {
    let wall_us = (wall_s * 1e6) as u64;
    let (executor_us, solver_us) = breakdown(wall_us, stats);
    let f = |get: fn(&EngineStats) -> u64| stats.iter().map(|s| get(s)).sum();
    Row {
        workers,
        wall_s,
        executor_us,
        solver_us,
        indep_queries: f(|s| s.solver.indep_queries),
        indep_components: f(|s| s.solver.indep_components),
        indep_comp_hits: f(|s| s.solver.indep_comp_hits),
        ucache_sub_hits: f(|s| s.solver.ucache_sub_hits),
        ucache_sup_hits: f(|s| s.solver.ucache_sup_hits),
        ucache_stores: f(|s| s.solver.ucache_stores),
    }
}

fn fork_heavy_engine_config(state_workers: usize, timed: bool) -> EngineConfig {
    EngineConfig {
        state_workers,
        solver: SolverConfig {
            slice: true,
            time_queries: timed,
            ..SolverConfig::default()
        },
        ..EngineConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_steal.json");
    let mut decoys = DECOYS;
    let mut sweep: Vec<usize> = SWEEP.to_vec();
    let mut repeat = 3usize;
    let mut dump_traces: Option<String> = None;
    let mut it = args.iter();
    let usage = || {
        eprintln!(
            "usage: [--out <path>] [--sweep <n,n,..>] [--decoys <n>] \
             [--repeat <n>] [--dump-traces <dir>]"
        );
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => usage(),
            },
            "--decoys" => match it.next().map(|n| n.parse()) {
                Some(Ok(n)) => decoys = n,
                _ => usage(),
            },
            "--repeat" => match it.next().map(|n| n.parse()) {
                Some(Ok(n)) if n > 0 => repeat = n,
                _ => usage(),
            },
            "--sweep" => match it.next() {
                Some(list) => {
                    let parsed: Result<Vec<usize>, _> =
                        list.split(',').map(|w| w.trim().parse()).collect();
                    match parsed {
                        Ok(ws) if !ws.is_empty() && ws.iter().all(|&w| w > 0) => sweep = ws,
                        _ => usage(),
                    }
                }
                None => usage(),
            },
            "--dump-traces" => match it.next() {
                Some(d) => dump_traces = Some(d.clone()),
                None => usage(),
            },
            _ => usage(),
        }
    }

    // ---- Workload 1: grep late-ranked hit -------------------------------
    let app = benchapps::grep();
    let logs = generate_corpus(
        &app,
        CorpusSpec {
            n_correct: 100,
            n_faulty: 100,
            sampling_rate: 1.0,
            seed: PAPER_SEED,
        },
    );
    let mut analysis = StatSym::new(grep_config(1)).analyze(&logs);
    let d = decoy(&analysis);
    let paths_mut = &mut analysis.candidates.as_mut().expect("candidates").paths;
    for _ in 0..decoys {
        paths_mut.insert(0, d.clone());
    }
    let n_candidates = paths_mut.len();

    // Plain sequential baseline — the exact configuration
    // BENCH_portfolio.json reports as `sequential_wall_s`, for
    // cross-report comparability (no slicing, no unsat cache).
    let plain = StatSymConfig {
        engine: EngineConfig {
            max_steps: MAX_STEPS,
            ..statsym_config().engine
        },
        guidance: GuidanceConfig {
            tau: 1_000_000,
            ..statsym_config().guidance
        },
        ..statsym_config()
    };
    let seq_start = Instant::now();
    let seq = StatSym::new(plain).run_with_analysis_pinned_traced(
        &app.module,
        analysis.clone(),
        &app.pins,
        &NOOP,
    );
    let seq_wall = seq_start.elapsed().as_secs_f64();
    assert_eq!(seq.candidate_used, Some(decoys), "the real candidate wins");

    println!(
        "steal scaling bench: {} ({n_candidates} candidates, {decoys} decoys, best of {repeat})",
        app.name
    );
    println!("  plain sequential: {seq_wall:.3}s, winner rank {decoys}");

    let mut grep_rows: Vec<Row> = Vec::new();
    for &w in &sweep {
        let mut best: Option<(f64, Vec<EngineStats>)> = None;
        for _ in 0..repeat {
            let cfg = grep_config(w);
            let start = Instant::now();
            let (used, stats) = if w == 1 {
                let r = StatSym::new(cfg).run_with_analysis_pinned_traced(
                    &app.module,
                    analysis.clone(),
                    &app.pins,
                    &NOOP,
                );
                (
                    r.candidate_used,
                    r.attempts.iter().map(|a| a.stats).collect(),
                )
            } else {
                let paths = &analysis.candidates.as_ref().expect("candidates").paths;
                let o = run_portfolio(&app.module, paths, &cfg, &app.pins, &NOOP);
                (
                    o.candidate_used,
                    o.attempts.iter().map(|a| a.stats).collect(),
                )
            };
            let wall = start.elapsed().as_secs_f64();
            assert_eq!(used, Some(decoys), "workers={w}: same winner required");
            if best.as_ref().is_none_or(|(b, _)| wall < *b) {
                best = Some((wall, stats));
            }
        }
        let (wall, stats) = best.expect("repeat >= 1");
        let refs: Vec<&EngineStats> = stats.iter().collect();
        let row = sum_stats(&refs, wall, w);
        println!(
            "  workers {w}: {wall:.3}s, speedup {:.2}x, solver {}us, \
             ucache sub-hits {}, sliced components {}",
            seq_wall / wall,
            row.solver_us,
            row.ucache_sub_hits,
            row.indep_components,
        );
        grep_rows.push(row);
    }

    // ---- Workload 2: fork-heavy loop, state-worker sweep ----------------
    let module = sir::lower(&minic::parse_program(FORK_HEAVY).expect("fork-heavy parses"))
        .expect("fork-heavy lowers");
    let mut fh_rows: Vec<Row> = Vec::new();
    let mut fh_base = 0.0f64;
    for &w in &sweep {
        let mut best: Option<(f64, EngineStats)> = None;
        for _ in 0..repeat {
            let ucache = Arc::new(UnsatCache::default());
            let mut eng = Engine::new(&module, fork_heavy_engine_config(w, true));
            eng.set_unsat_cache(ucache);
            let start = Instant::now();
            let report = eng.run();
            let wall = start.elapsed().as_secs_f64();
            assert!(
                matches!(report.outcome, RunOutcome::Completed),
                "fork-heavy must drain: {:?}",
                report.outcome
            );
            if best.as_ref().is_none_or(|(b, _)| wall < *b) {
                best = Some((wall, report.stats));
            }
        }
        let (wall, stats) = best.expect("repeat >= 1");
        if w == sweep[0] {
            fh_base = wall;
        }
        let row = sum_stats(&[&stats], wall, w);
        assert!(
            row.indep_queries > 0 && row.indep_components > 0,
            "state_workers={w}: slicing must engage on the fork-heavy workload"
        );
        assert!(
            row.ucache_stores > 0 && row.ucache_sub_hits > 0,
            "state_workers={w}: the unsat cache must engage on the fork-heavy workload"
        );
        println!(
            "  fork-heavy state_workers {w}: {wall:.3}s, executor {}us, solver {}us, \
             indep components {}, ucache sub-hits {}",
            row.executor_us, row.solver_us, row.indep_components, row.ucache_sub_hits,
        );
        fh_rows.push(row);
    }

    // Byte-identity across the sweep: same program, deterministic steps
    // clock, lineage + attribution + query provenance on, no
    // cross-state cache sharing — the rendered trace (events *and*
    // final counters) must not depend on the worker count.
    // `--dump-traces` persists them for CI's `cmp` gate.
    let mut reference: Option<(usize, String)> = None;
    for &w in &sweep {
        let rec = MemRecorder::new(Clock::steps());
        {
            let mut eng = Engine::new(
                &module,
                EngineConfig {
                    lineage: true,
                    attribution: true,
                    provenance: true,
                    ..fork_heavy_engine_config(w, false)
                },
            );
            eng.set_recorder(&rec);
            let _ = eng.run();
        }
        let trace = render_trace(&rec.finish());
        if let Some(dir) = &dump_traces {
            std::fs::create_dir_all(dir).expect("create trace dir");
            let path = format!("{dir}/fork_heavy_w{w}.trace");
            std::fs::write(&path, &trace).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        }
        match &reference {
            None => reference = Some((w, trace)),
            Some((w0, base)) => assert_eq!(
                &trace, base,
                "fork-heavy trace at {w} state workers diverged from {w0}"
            ),
        }
    }
    println!(
        "  fork-heavy traces byte-identical across state workers {:?}",
        sweep
    );

    let grep_json: Vec<String> = grep_rows
        .iter()
        .map(|r| r.json("workers", seq_wall))
        .collect();
    let fh_json: Vec<String> = fh_rows
        .iter()
        .map(|r| r.json("state_workers", fh_base))
        .collect();
    let json = format!(
        "{{\n  \"app\": \"{}\",\n  \"seed\": {PAPER_SEED},\n  \"decoys\": {decoys},\n  \
         \"candidates\": {n_candidates},\n  \"max_steps\": {MAX_STEPS},\n  \
         \"winner_rank\": {decoys},\n  \"repeat\": {repeat},\n  \
         \"sequential_wall_s\": {seq_wall:.4},\n  \
         \"grep_sweep\": [\n{}\n  ],\n  \
         \"fork_heavy\": {{\n    \"traces_byte_identical\": true,\n    \"sweep\": [\n{}\n    ]\n  }}\n}}\n",
        app.name,
        grep_json.join(",\n"),
        fh_json.join(",\n"),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("report written to {out}");
}
