//! Regenerates **Table III**: number of detours and time breakdown at
//! 30% sampling.
//!
//! Pass `--workers <n>` to run the guided execution stage as a parallel
//! candidate portfolio (identical results, lower wall time), and
//! `--trace <path>` to export a structured JSONL trace of the run
//! (and `--clock wall` for wall-clock stamps). `--lineage` additionally
//! records the per-state exploration tree for `statsym-inspect
//! tree|coverage|flame|watch`.

use bench::{guided_config, run_statsym_opts_traced, GuidedRunOpts, Table, TraceSink, PAPER_SEED};
use statsym_core::pipeline::config_fingerprint;

fn main() {
    let mut sink = TraceSink::from_args();
    let cfg = guided_config(&GuidedRunOpts {
        workers: sink.workers(),
        lineage: sink.lineage(),
        attr: sink.attr(),
        share_cache: sink.share_cache(),
    });
    sink.set_manifest_meta(PAPER_SEED, &config_fingerprint(&cfg), &format!("{cfg:#?}"));
    let sink = sink;
    let rate = 0.3;
    let mut table = Table::new(
        "TABLE III: detours and time breakdown, sampling rate 30%",
        &[
            "Benchmark",
            "detours",
            "candidates",
            "stat time(sec)",
            "symex time(sec)",
            "found",
        ],
    );
    for app in benchapps::all_apps() {
        let r = run_statsym_opts_traced(
            &app,
            rate,
            PAPER_SEED,
            100,
            100,
            GuidedRunOpts {
                workers: sink.workers(),
                lineage: sink.lineage(),
                attr: sink.attr(),
                share_cache: sink.share_cache(),
            },
            sink.recorder(),
        );
        table.row(&[
            app.name.to_string(),
            r.report.analysis.n_detours().to_string(),
            r.report.analysis.n_candidates().to_string(),
            format!("{:.3}", r.report.analysis.analysis_time.as_secs_f64()),
            format!("{:.3}", r.report.symex_time.as_secs_f64()),
            r.report.found.is_some().to_string(),
        ]);
    }
    println!("{}", table.render());
    sink.finish();
}
