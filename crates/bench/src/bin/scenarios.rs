//! Scenario sweep over the protocol-parser benchapps — the heap-model
//! fault families of DESIGN.md §16 — emitting `BENCH_scenarios.json`.
//!
//! Each parser app (http_header, http_chunked, urldecode, base64) is
//! driven through the full pipeline under the deterministic portfolio
//! configuration (no cancellation races, no shared solver cache) at 1,
//! 2, and 4 workers. The binary asserts the hard invariants — the
//! planted fault function is localized, the winner rank is 0, and the
//! found input/fault agree across worker counts — and records wall
//! time, attempt counts, and paths explored per point.
//!
//! Pass `--out <path>` to redirect the JSON report (default
//! `BENCH_scenarios.json`), and the shared trace flags (`--trace
//! <path>`, `--clock steps|wall`, `--workers <n>`, `--lineage`,
//! `--attr`) to export a JSONL trace — with `--workers` the sweep
//! collapses to that single count, which is how the CI trace gate
//! records a byte-reproducible parser workload.

use bench::{statsym_config, TraceSink, PAPER_SEED};
use benchapps::{by_name, generate_corpus, CorpusSpec};
use statsym_core::pipeline::{StatSym, StatSymConfig};
use std::time::Instant;

/// Portfolio worker counts swept per app.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// (app, fault family label, fault function) — winner rank 0 for all.
const CASES: [(&str, &str, &str); 4] = [
    ("http_header", "off-by-one", "store_value"),
    ("http_chunked", "alloc-overflow", "read_chunk"),
    ("urldecode", "uaf", "decode"),
    ("base64", "format-string", "log_reject"),
];

/// Deterministic portfolio config: no cancellation races, no shared
/// solver cache, so traces are scheduling-independent per worker count.
fn config(workers: usize, sink: &TraceSink) -> StatSymConfig {
    let base = statsym_config();
    let mut cfg = StatSymConfig {
        workers,
        cancel_on_found: false,
        share_cache: false,
        ..base
    };
    cfg.engine.lineage = sink.lineage();
    cfg.engine.attribution = sink.attr();
    cfg.engine.provenance = sink.attr();
    cfg
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut sink = TraceSink::extract(&mut args);
    let fingerprint_cfg = config(1, &sink);
    sink.set_manifest_meta(
        PAPER_SEED,
        &statsym_core::pipeline::config_fingerprint(&fingerprint_cfg),
        &format!("{fingerprint_cfg:#?}"),
    );
    let sink = sink;
    let mut out = String::from("BENCH_scenarios.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    eprintln!("error: --out requires a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: [--out <path>] [--trace <path>] [--clock steps|wall] \
                     [--workers <n>] [--lineage] [--attr]"
                );
                std::process::exit(2);
            }
        }
    }
    let rec = sink.recorder();
    let worker_counts: Vec<usize> = match sink.explicit_workers() {
        Some(w) => vec![w],
        None => WORKER_COUNTS.to_vec(),
    };

    println!("parser scenario sweep (seed {PAPER_SEED})");
    let mut scenarios = Vec::new();
    for (name, family, fault_func) in CASES {
        let app = by_name(name).expect("known parser app");
        let logs = generate_corpus(
            &app,
            CorpusSpec {
                n_correct: 30,
                n_faulty: 30,
                sampling_rate: 0.3,
                seed: PAPER_SEED,
            },
        );
        let analysis = StatSym::new(config(1, &sink)).analyze(&logs);
        let candidates = analysis
            .candidates
            .as_ref()
            .map(|c| c.paths.len())
            .expect("candidate paths");

        let mut baseline: Option<(String, String)> = None;
        let mut rows = Vec::new();
        for &workers in &worker_counts {
            let start = Instant::now();
            let report = StatSym::new(config(workers, &sink)).run_with_analysis_traced(
                &app.module,
                analysis.clone(),
                rec,
            );
            let wall = start.elapsed().as_secs_f64();
            let found = report
                .found
                .as_ref()
                .unwrap_or_else(|| panic!("{name}@{workers}: fault not found"));
            assert_eq!(found.fault.func, fault_func, "{name}@{workers}: fault site");
            assert_eq!(
                report.candidate_used,
                Some(0),
                "{name}@{workers}: winner rank"
            );
            let mut inputs: Vec<_> = found.inputs.iter().collect();
            inputs.sort_by(|a, b| a.0.cmp(b.0));
            let fingerprint = (format!("{inputs:?}"), format!("{:?}", found.fault));
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(base) => {
                    assert_eq!(
                        *base, fingerprint,
                        "{name}@{workers}: found witness diverged across worker counts"
                    );
                }
            }
            println!(
                "  {name} [{family}] workers {workers}: {wall:.3}s, \
                 {} attempt(s), {} path(s), fault in `{fault_func}`",
                report.attempts.len(),
                report.total_paths_explored()
            );
            rows.push(format!(
                "      {{\"workers\": {workers}, \"wall_s\": {wall:.4}, \
                 \"attempts\": {}, \"paths_explored\": {}}}",
                report.attempts.len(),
                report.total_paths_explored()
            ));
        }
        scenarios.push(format!(
            "    {{\"app\": \"{name}\", \"family\": \"{family}\", \
             \"fault_func\": \"{fault_func}\", \"winner_rank\": 0, \
             \"candidates\": {candidates}, \"sweep\": [\n{}\n    ]}}",
            rows.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"seed\": {PAPER_SEED},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenarios.join(",\n")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("report written to {out}");
    sink.finish();
}
