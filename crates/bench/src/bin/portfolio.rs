//! Portfolio scaling bench: sequential vs parallel candidate-path
//! execution on a late-ranked-hit workload, emitting
//! `BENCH_portfolio.json`.
//!
//! The workload prepends `DECOYS` hopeless candidates ahead of the real
//! ranking: each injects the *inverted* length separator at the fault
//! function's entry (`len(buffer) < σ` instead of `> σ`), confining
//! exploration to the sub-threshold input space. That space is
//! exponentially large (every char forks the toupper branch), the
//! faulting branch is suspended on the soft-constraint conflict, and the
//! attempt deterministically exhausts its step budget without finding.
//! The sequential loop must burn through every decoy before reaching
//! the winner; the portfolio runs them concurrently, shares solver
//! verdicts across workers, and returns the identical result.
//!
//! Pass `--out <path>` to redirect the JSON report (default
//! `BENCH_portfolio.json` in the current directory), `--decoys <n>` to
//! shrink or grow the workload, and the shared trace flags (`--trace
//! <path>`, `--clock steps|wall`, `--workers <n>`, `--lineage`,
//! `--attr`, `--no-share-cache`) to export a JSONL trace — with
//! `--workers` the sweep collapses to that single count, which is how
//! CI runs a small traced portfolio workload.

use bench::{statsym_config, TraceSink, PAPER_SEED};
use benchapps::{generate_corpus, CorpusSpec};
use concrete::Measure;
use statsym_core::pipeline::{StatSym, StatSymConfig};
use statsym_core::portfolio::run_portfolio;
use statsym_core::{AnalysisReport, CandidatePath, GuidanceConfig, PathNode, PredOp};
use std::time::Instant;
use symex::EngineConfig;

/// Hopeless candidates ranked ahead of the real ones.
const DECOYS: usize = 6;
/// Per-candidate step budget: decoys exhaust it, the winner does not.
const MAX_STEPS: u64 = 60_000;
/// Worker counts benchmarked against the sequential loop.
const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

fn config(workers: usize, sink: &TraceSink) -> StatSymConfig {
    let base = statsym_config();
    StatSymConfig {
        workers,
        share_cache: sink.share_cache(),
        engine: EngineConfig {
            max_steps: MAX_STEPS,
            lineage: sink.lineage(),
            attribution: sink.attr(),
            provenance: sink.attr(),
            panic_after: sink.panic_after(),
            ..base.engine
        },
        // The pinned pre-fault prefix (pattern matching over concrete
        // lines) emits many function events; a large τ keeps decoy
        // states alive until they reach the poisoned fault region.
        guidance: GuidanceConfig {
            tau: 1_000_000,
            ..base.guidance
        },
        ..base
    }
}

/// A candidate whose single node inverts the analysis' top length
/// separator at the fault function's entry: the injected soft constraint
/// `len(buffer) < σ` suspends the faulting branch and steers the whole
/// attempt into the exponential sub-threshold subspace, which cannot be
/// drained within the step budget.
fn decoy(analysis: &AnalysisReport) -> CandidatePath {
    let failure = analysis
        .failure_location
        .clone()
        .expect("analysis pinpoints the failure");
    let template = analysis
        .predicates
        .ranked
        .iter()
        .find(|p| !p.is_degenerate() && p.loc == failure && p.var.measure == Measure::Length)
        .expect("a length predicate at the failure point");
    let mut poison = template.clone();
    poison.op = PredOp::Lt;
    CandidatePath {
        nodes: vec![PathNode {
            loc: failure,
            predicates: vec![poison],
        }],
        score: 9.0,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut sink = TraceSink::extract(&mut args);
    let mut out = String::from("BENCH_portfolio.json");
    let mut decoys = DECOYS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => {
                    eprintln!("error: --out requires a file path");
                    std::process::exit(2);
                }
            },
            "--decoys" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => decoys = n,
                _ => {
                    eprintln!("error: --decoys requires a non-negative integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!(
                    "usage: [--out <path>] [--decoys <n>] \
                     [--trace <path>] [--clock steps|wall] [--workers <n>] [--lineage] \
                     [--attr] [--no-share-cache] [--history <dir>] [--expose <addr>] \
                     [--crash-dir <dir>] [--panic-after <steps>]"
                );
                std::process::exit(2);
            }
        }
    }
    // An explicit --workers collapses the sweep to that single count —
    // the shape CI uses for its small traced workload.
    let worker_counts: Vec<usize> = match sink.explicit_workers() {
        Some(w) => vec![w],
        None => WORKER_COUNTS.to_vec(),
    };
    // Manifest/crash-bundle identity: fingerprint the sequential-shape
    // config — scheduling canonicalization makes the worker count moot.
    let fingerprint_cfg = config(1, &sink);
    sink.set_manifest_meta(
        PAPER_SEED,
        &statsym_core::pipeline::config_fingerprint(&fingerprint_cfg),
        &format!("{fingerprint_cfg:#?}"),
    );
    let sink = sink;
    let rec = sink.recorder();

    let app = benchapps::grep();
    let logs = generate_corpus(
        &app,
        CorpusSpec {
            n_correct: 100,
            n_faulty: 100,
            sampling_rate: 1.0,
            seed: PAPER_SEED,
        },
    );
    let mut analysis = StatSym::new(config(1, &sink)).analyze(&logs);
    let d = decoy(&analysis);
    let paths = &mut analysis.candidates.as_mut().expect("candidates").paths;
    for _ in 0..decoys {
        paths.insert(0, d.clone());
    }
    let n_candidates = paths.len();

    // Sequential baseline through the pipeline's workers == 1 loop.
    let seq_start = Instant::now();
    let seq = StatSym::new(config(1, &sink)).run_with_analysis_pinned_traced(
        &app.module,
        analysis.clone(),
        &app.pins,
        rec,
    );
    let seq_wall = seq_start.elapsed().as_secs_f64();
    assert_eq!(
        seq.candidate_used,
        Some(decoys),
        "the first real candidate must win"
    );

    println!(
        "portfolio scaling bench: {} ({n_candidates} candidates, {decoys} decoys)",
        app.name
    );
    println!("  sequential: {seq_wall:.3}s, winner rank {}", decoys);

    let mut rows = Vec::new();
    for workers in worker_counts {
        let cfg = config(workers, &sink);
        let paths = &analysis.candidates.as_ref().expect("candidates").paths;
        let start = Instant::now();
        let outcome = run_portfolio(&app.module, paths, &cfg, &app.pins, rec);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(
            outcome.candidate_used,
            Some(decoys),
            "portfolio must select the same winner"
        );
        let cache = outcome.cache;
        let consults = cache.hits + cache.misses;
        let hit_rate = if consults == 0 {
            0.0
        } else {
            cache.hits as f64 / consults as f64
        };
        let speedup = seq_wall / wall;
        println!(
            "  workers {workers}: {wall:.3}s, speedup {speedup:.2}x, \
             shared cache {}/{consults} hits ({:.1}%)",
            cache.hits,
            100.0 * hit_rate
        );
        rows.push(format!(
            "    {{\"workers\": {workers}, \"wall_s\": {wall:.4}, \"speedup\": {speedup:.3}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_stores\": {}, \
             \"cache_entries\": {}, \"cache_contention\": {}, \"hit_rate\": {hit_rate:.4}}}",
            cache.hits, cache.misses, cache.stores, cache.entries, cache.contention
        ));
    }

    let json = format!(
        "{{\n  \"app\": \"{}\",\n  \"seed\": {PAPER_SEED},\n  \"decoys\": {decoys},\n  \
         \"candidates\": {n_candidates},\n  \"max_steps\": {MAX_STEPS},\n  \
         \"winner_rank\": {decoys},\n  \"sequential_wall_s\": {seq_wall:.4},\n  \
         \"parallel\": [\n{}\n  ]\n}}\n",
        app.name,
        rows.join(",\n")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("report written to {out}");
    sink.finish();
}
