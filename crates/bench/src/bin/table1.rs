//! Regenerates **Table I**: program statistics — SLOC, external call
//! sites, internal call sites, global variables, function parameters.

use bench::Table;

fn main() {
    let mut table = Table::new(
        "TABLE I: Program source statistics (scaled MiniC re-implementations)",
        &[
            "Program",
            "SLOC",
            "Ext. Call",
            "Inter. Call",
            "G.V.",
            "Params.",
        ],
    );
    for app in benchapps::all_apps() {
        let s = app.stats();
        table.row(&[
            app.name.to_string(),
            s.sloc.to_string(),
            s.external_calls.to_string(),
            s.internal_calls.to_string(),
            s.globals.to_string(),
            s.params.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Paper (original full-size C programs, for reference):");
    println!("  polymorph 506 / 29 / 16 / 36 / 253");
    println!("  CTree 3011 / 50 / 11188 / 1568 / 532");
    println!("  Grep 6660 / 143 / 718 / 15760 / 545");
    println!("  thttpd 7939 / 114 / 52 / 145 / 7420");
}
