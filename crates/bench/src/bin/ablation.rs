//! Ablation studies beyond the paper's tables:
//!
//! 1. **τ sensitivity** — the hop-divergence threshold trades robustness
//!    for search cost (paper §V-C discusses the trade-off but reports
//!    only τ=10). Swept on thttpd, the app with the deepest call chain.
//! 2. **Baseline scheduler ablation** — how each pure KLEE searcher
//!    (BFS, DFS, random, coverage-optimized) fares on the four apps
//!    under the same memory budget.
//! 3. **Compound predicates** — whether Liblit-style conjunctions add
//!    information on the paper workloads (they should not: single
//!    length thresholds already separate the classes).

use bench::{Table, TraceSink, DEFAULT_MEMORY_BUDGET, PAPER_SEED};
use benchapps::{generate_corpus_traced, CorpusSpec};
use statsym_core::pipeline::{StatSym, StatSymConfig};
use statsym_core::{CompoundSet, GuidanceConfig, GuidedHook, LogCorpus, PredicateSet};
use statsym_telemetry::Recorder;
use std::time::Duration;
use symex::{Engine, EngineConfig, RunOutcome, SchedulerKind};

fn main() {
    let mut sink = TraceSink::from_args();
    // The ablations sweep many configs; fingerprint the paper baseline
    // they all perturb.
    let base = bench::statsym_config();
    sink.set_manifest_meta(
        PAPER_SEED,
        &statsym_core::pipeline::config_fingerprint(&base),
        &format!("{base:#?}"),
    );
    let sink = sink;
    tau_sensitivity(sink.recorder());
    scheduler_ablation(sink.recorder());
    compound_predicates(sink.recorder());
    sink.finish();
}

fn spec() -> CorpusSpec {
    CorpusSpec {
        n_correct: 100,
        n_faulty: 100,
        sampling_rate: 0.3,
        seed: PAPER_SEED,
    }
}

fn tau_sensitivity(rec: &dyn Recorder) {
    let app = benchapps::thttpd();
    let logs = generate_corpus_traced(&app, spec(), rec);
    let mut table = Table::new(
        "Ablation A: hop threshold tau sensitivity (thttpd, 30% sampling)",
        &[
            "tau",
            "found",
            "candidate",
            "paths",
            "suspended",
            "time(ms)",
        ],
    );
    for tau in [0u32, 1, 2, 5, 10, 20] {
        let statsym = StatSym::new(StatSymConfig {
            guidance: GuidanceConfig {
                tau,
                ..GuidanceConfig::default()
            },
            ..StatSymConfig::default()
        });
        let analysis = statsym.analyze_traced(&logs, rec);
        let mut found = None;
        let mut paths = 0;
        let mut suspended = 0;
        let t0 = std::time::Instant::now();
        if let Some(cands) = &analysis.candidates {
            for (i, path) in cands.paths.iter().enumerate() {
                let hook = GuidedHook::new(path.clone(), statsym.config().guidance);
                let mut engine = Engine::with_hook(
                    &app.module,
                    EngineConfig {
                        scheduler: SchedulerKind::Priority,
                        time_budget: Some(Duration::from_secs(20)),
                        ..EngineConfig::default()
                    },
                    Box::new(hook),
                );
                engine.set_recorder(rec);
                for (n, v) in &app.pins {
                    engine.pin_input(n.clone(), v.clone());
                }
                let report = engine.run();
                paths += report.stats.paths_explored;
                suspended += report.stats.exec.suspended;
                if report.outcome.is_found() {
                    found = Some(i);
                    break;
                }
            }
        }
        table.row(&[
            tau.to_string(),
            found.is_some().to_string(),
            found.map_or("-".into(), |i| i.to_string()),
            paths.to_string(),
            suspended.to_string(),
            format!("{:.1}", t0.elapsed().as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", table.render());
}

fn scheduler_ablation(rec: &dyn Recorder) {
    let mut table = Table::new(
        "Ablation B: pure-baseline scheduler comparison (64 MiB modeled budget)",
        &["Benchmark", "BFS", "DFS", "Random", "Coverage"],
    );
    for app in benchapps::all_apps() {
        let mut cells = vec![app.name.to_string()];
        for scheduler in [
            SchedulerKind::Bfs,
            SchedulerKind::Dfs,
            SchedulerKind::Random { seed: PAPER_SEED },
            SchedulerKind::Coverage,
        ] {
            let mut engine = Engine::new(
                &app.module,
                EngineConfig {
                    scheduler,
                    memory_budget: DEFAULT_MEMORY_BUDGET,
                    time_budget: Some(Duration::from_secs(30)),
                    ..EngineConfig::default()
                },
            );
            engine.set_recorder(rec);
            for (n, v) in &app.pins {
                engine.pin_input(n.clone(), v.clone());
            }
            let report = engine.run();
            cells.push(match report.outcome {
                RunOutcome::Found(_) => format!("found/{}", report.stats.paths_explored),
                RunOutcome::Exhausted(r) => format!("fail({r})"),
                RunOutcome::Completed => "completed".into(),
            });
        }
        table.row(&cells);
    }
    println!("{}", table.render());
}

fn compound_predicates(rec: &dyn Recorder) {
    let mut table = Table::new(
        "Ablation C: compound predicates (gain over best single threshold)",
        &["Benchmark", "#compounds", "best gain", "best single"],
    );
    for app in benchapps::all_apps() {
        let logs = generate_corpus_traced(&app, spec(), rec);
        let corpus = LogCorpus::build(&logs);
        let simple = PredicateSet::build_traced(&corpus, rec);
        let compound = CompoundSet::build(&logs, &simple, 4);
        let best_single = simple.ranked.first().map(|p| p.score).unwrap_or(0.0);
        let (n, gain) = (
            compound.ranked.len(),
            compound.ranked.first().map(|c| c.gain()).unwrap_or(0.0),
        );
        table.row(&[
            app.name.to_string(),
            n.to_string(),
            format!("{gain:.3}"),
            format!("{best_single:.3}"),
        ]);
    }
    println!("{}", table.render());
}
