//! Regenerates **Figure 7**: candidate-path length statistics (min /
//! average / max nodes) and the number of candidate paths per program.

use bench::{Table, PAPER_SEED};
use benchapps::{generate_corpus, CorpusSpec};
use statsym_core::pipeline::StatSym;

fn main() {
    let mut table = Table::new(
        "Fig. 7: candidate path lengths (30% sampling)",
        &["Program", "#paths", "Min", "Avg", "Max"],
    );
    for app in benchapps::all_apps() {
        let logs = generate_corpus(
            &app,
            CorpusSpec {
                n_correct: 100,
                n_faulty: 100,
                sampling_rate: 0.3,
                seed: PAPER_SEED,
            },
        );
        let analysis = StatSym::default().analyze(&logs);
        let (n, stats) = analysis
            .candidates
            .as_ref()
            .map(|c| (c.paths.len(), c.length_stats()))
            .unwrap_or((0, None));
        let (min, avg, max) = stats.unwrap_or((0, 0.0, 0));
        table.row(&[
            app.name.to_string(),
            n.to_string(),
            min.to_string(),
            format!("{avg:.1}"),
            max.to_string(),
        ]);
    }
    println!("{}", table.render());
}
