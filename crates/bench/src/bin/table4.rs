//! Regenerates **Table IV**: paths explored and time to find the bug —
//! StatSym (KLEE w/ statistics guidance) vs pure symbolic execution, at
//! 30% sampling. Pure runs that exhaust the memory budget print
//! `Failed`, as in the paper.
//!
//! Pass `--workers <n>` to run the guided execution stage as a parallel
//! candidate portfolio (identical results, lower wall time), and
//! `--trace <path>` to export a structured JSONL trace of the run
//! (and `--clock wall` for wall-clock stamps). `--lineage` additionally
//! records the per-state exploration tree for `statsym-inspect
//! tree|coverage|flame|watch`.

use bench::{
    guided_config, pure_engine_config, run_pure_traced, run_statsym_opts_traced, GuidedRunOpts,
    Table, TraceSink, DEFAULT_SAMPLING, PAPER_SEED,
};
use statsym_core::pipeline::config_fingerprint;
use symex::{EngineConfig, RunOutcome};

fn main() {
    let mut sink = TraceSink::from_args();
    let cfg = guided_config(&GuidedRunOpts {
        workers: sink.workers(),
        lineage: sink.lineage(),
        attr: sink.attr(),
        share_cache: sink.share_cache(),
    });
    sink.set_manifest_meta(PAPER_SEED, &config_fingerprint(&cfg), &format!("{cfg:#?}"));
    let sink = sink;
    let mut table = Table::new(
        "TABLE IV: paths explored and time before finding the bug (30% sampling)",
        &[
            "Benchmark",
            "StatSym #paths",
            "StatSym time(sec)",
            "Pure #paths",
            "Pure time(sec)",
        ],
    );
    for app in benchapps::all_apps() {
        let guided = run_statsym_opts_traced(
            &app,
            DEFAULT_SAMPLING,
            PAPER_SEED,
            100,
            100,
            GuidedRunOpts {
                workers: sink.workers(),
                lineage: sink.lineage(),
                attr: sink.attr(),
                share_cache: sink.share_cache(),
            },
            sink.recorder(),
        );
        assert!(
            guided.report.found.is_some(),
            "StatSym must find the bug in {}",
            app.name
        );
        let pure_config = EngineConfig {
            lineage: sink.lineage(),
            attribution: sink.attr(),
            provenance: sink.attr(),
            ..pure_engine_config()
        };
        let pure = run_pure_traced(&app, pure_config, sink.recorder());
        let (pure_time, pure_note) = match &pure.report.outcome {
            RunOutcome::Found(_) => (format!("{:.2}", pure.report.wall_time.as_secs_f64()), ""),
            RunOutcome::Exhausted(r) => (format!("Failed ({r})"), ""),
            RunOutcome::Completed => ("Completed (no bug?)".to_string(), ""),
        };
        let _ = pure_note;
        table.row(&[
            app.name.to_string(),
            guided.report.total_paths_explored().to_string(),
            format!("{:.2}", guided.report.total_time().as_secs_f64()),
            pure.report.stats.paths_explored.to_string(),
            pure_time,
        ]);
    }
    println!("{}", table.render());
    println!("Paper: StatSym finds all 4; pure KLEE fails (OOM) on CTree, thttpd, Grep");
    println!("and is ~15x slower on polymorph.");
    sink.finish();
}
