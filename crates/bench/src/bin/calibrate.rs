//! Calibration utility: prints pure-vs-guided outcomes for every app so
//! the scaled budgets can be sanity-checked quickly. Not part of the
//! paper's tables; see `table4` for the real comparison.

use bench::{pure_engine_config, run_pure, run_statsym_sized, PAPER_SEED};

fn main() {
    for app in benchapps::all_apps() {
        let t0 = std::time::Instant::now();
        let pure = run_pure(&app, pure_engine_config());
        let pure_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        let guided = run_statsym_sized(&app, 0.3, PAPER_SEED, 30, 30);
        let guided_t = t1.elapsed();
        println!(
            "{:10} pure: {:?} paths={} peakmem={}KB t={:.2}s | statsym: found={} cand={:?} paths={} t={:.2}s (stat {:.3}s symex {:.3}s)",
            app.name,
            match &pure.report.outcome {
                symex::RunOutcome::Found(_) => "FOUND".to_string(),
                symex::RunOutcome::Exhausted(r) => format!("FAIL({r})"),
                symex::RunOutcome::Completed => "COMPLETED".to_string(),
            },
            pure.report.stats.paths_explored,
            pure.report.stats.peak_memory / 1024,
            pure_t.as_secs_f64(),
            guided.report.found.is_some(),
            guided.report.candidate_used,
            guided.report.total_paths_explored(),
            guided_t.as_secs_f64(),
            guided.report.analysis.analysis_time.as_secs_f64(),
            guided.report.symex_time.as_secs_f64(),
        );
    }
}
