//! Regenerates **Figure 2**: search-space reduction on the motivating
//! example — pure symbolic execution explores the full branching tree,
//! statistics-guided execution prunes it to the vulnerable subtree.

use bench::{pure_engine_config, run_pure, PAPER_SEED};
use benchapps::{generate_corpus, CorpusSpec};
use statsym_core::pipeline::{StatSym, StatSymConfig};
use statsym_core::GuidanceConfig;

fn main() {
    let app = benchapps::motivating();
    let pure = run_pure(&app, pure_engine_config());
    // Tight hop threshold: the sample program is tiny, so a small tau is
    // what makes the trimmed subtrees of Figure 2c visible.
    let logs = generate_corpus(
        &app,
        CorpusSpec {
            n_correct: 50,
            n_faulty: 50,
            sampling_rate: 1.0,
            seed: PAPER_SEED,
        },
    );
    let statsym = StatSym::new(StatSymConfig {
        guidance: GuidanceConfig {
            tau: 1,
            ..GuidanceConfig::default()
        },
        ..StatSymConfig::default()
    });
    let report = statsym.run(&app.module, &logs);
    let guided = bench::ExperimentResult {
        app: app.name,
        n_logs: logs.len(),
        report,
    };

    println!("Fig. 2: motivating example (paper Figure 2a program)");
    println!(
        "  pure symbolic execution : found={} states_created={} paths={}",
        pure.report.outcome.is_found(),
        pure.report.stats.states_created,
        pure.report.stats.paths_explored
    );
    let g = &guided.report;
    let (states, paths): (u64, u64) = g
        .attempts
        .iter()
        .map(|a| (a.stats.states_created, a.stats.paths_explored))
        .fold((0, 0), |(s, p), (s2, p2)| (s + s2, p + p2));
    println!(
        "  statistics-guided        : found={} states_created={} paths={}",
        g.found.is_some(),
        states,
        paths
    );
    if let Some(found) = &g.found {
        println!("  vulnerable input: {:?}", found.inputs.get("sym_m"));
        println!("  constraints: {:?}", found.rendered_constraints);
    }
}
