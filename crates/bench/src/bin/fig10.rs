//! Regenerates **Figure 10**: sensitivity of the statistical-analysis
//! and symbolic-execution times to the sampling rate (20%–100%), for
//! polymorph and CTree.

use bench::{run_statsym, Table, PAPER_SEED};

fn main() {
    for app in [benchapps::polymorph(), benchapps::ctree()] {
        let mut table = Table::new(
            format!("Fig. 10: time breakdown vs sampling rate — {}", app.name),
            &[
                "sampling",
                "stat time(sec)",
                "symex time(sec)",
                "paths",
                "found",
            ],
        );
        for pct in [20, 30, 40, 50, 60, 70, 80, 90, 100] {
            let rate = pct as f64 / 100.0;
            let r = run_statsym(&app, rate, PAPER_SEED);
            table.row(&[
                format!("{pct}%"),
                format!("{:.4}", r.report.analysis.analysis_time.as_secs_f64()),
                format!("{:.4}", r.report.symex_time.as_secs_f64()),
                r.report.total_paths_explored().to_string(),
                r.report.found.is_some().to_string(),
            ]);
        }
        println!("{}", table.render());
    }
}
