//! Plain-text table rendering in the paper's layout.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a caption and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a `Duration` in seconds with one decimal, like the paper.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("TABLE X: demo", &["Benchmark", "time(sec)"]);
        t.row(&["polymorph".into(), "1.9".into()]);
        t.row(&["x".into(), "100.25".into()]);
        let s = t.render();
        assert!(s.starts_with("TABLE X: demo\n"));
        assert!(s.contains("polymorph  1.9"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new("t", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn secs_formats_two_decimals() {
        assert_eq!(secs(std::time::Duration::from_millis(1234)), "1.23");
    }
}
