//! `--trace <path>` / `--stream <addr>` / `--clock steps|wall` support
//! for the bench binaries: every table/figure binary can export a
//! structured JSONL trace of the run it just printed — to a file, to a
//! live `statsym-inspect live` consumer, or both at once.
//!
//! With `--clock steps` the trace is stamped with the engine's logical
//! step counter instead of wall-clock time, making the file
//! byte-reproducible across runs under a fixed seed. Fan-out is handled
//! by [`FanoutRecorder`]: the file and the stream see the same event
//! lines, so a stream recorded by `statsym-inspect live --record` is
//! byte-identical to the `--trace` file.
//!
//! The observability layer adds four more shared flags:
//!
//! * `--history <dir|file.jsonl>` — fold the finished trace into a
//!   [`RunManifest`](statsym_telemetry::manifest::RunManifest) and
//!   append it to the content-addressed run-history archive
//!   (`results/history/` by convention). Requires `--trace`.
//! * `--expose <addr>` — serve live Prometheus-text metrics snapshots
//!   on a TCP address or Unix socket (`statsym-inspect scrape` client).
//! * `--crash-dir <dir>` — arm a panic hook that writes a diagnostic
//!   bundle (panic message, config, reproduce command, partial trace,
//!   crash manifest) under `<dir>/<run>/` if the run dies.
//! * `--panic-after <n>` — chaos knob: force an engine panic after `n`
//!   executed steps, for drilling the crash path end to end.

use statsym_telemetry::crash::{CrashContext, CrashGuard};
use statsym_telemetry::manifest::{self, ManifestMeta, RunManifest};
use statsym_telemetry::{Clock, FanoutRecorder, FileSink, Recorder, StreamSink, NOOP};

/// Command-line trace options for a bench binary.
#[derive(Debug)]
pub struct TraceSink {
    path: Option<String>,
    streamed: bool,
    rec: Option<FanoutRecorder>,
    workers: Option<usize>,
    lineage: bool,
    attr: bool,
    share_cache: bool,
    history: Option<String>,
    panic_after: Option<u64>,
    run: String,
    meta: ManifestMeta,
    crash_guard: Option<CrashGuard>,
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: [--trace <path>] [--stream <addr>] [--clock steps|wall] [--workers <n>] \
         [--lineage] [--attr] [--no-share-cache] [--history <dir>] [--expose <addr>] \
         [--crash-dir <dir>] [--panic-after <steps>]"
    );
    std::process::exit(2);
}

impl TraceSink {
    /// Parses `--trace <path>`, `--stream <addr>`, `--clock steps|wall`,
    /// and `--workers <n>` from the process arguments. Defaults to the
    /// deterministic step clock so fixed-seed runs produce byte-identical
    /// trace files, and to a single worker (the sequential candidate
    /// loop).
    ///
    /// Exits with status 2 (and a usage message on stderr) on a
    /// malformed command line, an unrecognized flag, or an unwritable
    /// trace path. Binaries with their own flags should call
    /// [`TraceSink::extract`] instead.
    pub fn from_args() -> TraceSink {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let sink = TraceSink::extract(&mut args);
        if let Some(other) = args.first() {
            usage_exit(&format!("unknown argument `{other}`"));
        }
        sink
    }

    /// Pulls the shared trace/observability flags (`--trace`,
    /// `--stream`, `--clock`, `--workers`, `--lineage`, `--attr`,
    /// `--no-share-cache`, `--history`, `--expose`, `--crash-dir`,
    /// `--panic-after`) out of `args`, leaving every unrecognized
    /// argument in place for the caller to parse — how binaries combine
    /// their own flags with the shared trace options.
    ///
    /// `--stream` dials a `statsym-inspect live` listener (TCP
    /// `host:port`, or a Unix socket path containing `/`), retrying for
    /// a few seconds so a consumer started in parallel wins the race.
    /// The stream's run id is the `--trace` file stem (or `bench`
    /// without `--trace`).
    ///
    /// Exits with status 2 on a malformed trace flag, an unwritable
    /// trace path, or an unreachable stream address.
    pub fn extract(args: &mut Vec<String>) -> TraceSink {
        let mut path = None;
        let mut stream = None;
        let mut wall = false;
        let mut workers = None;
        let mut lineage = false;
        let mut attr = false;
        let mut share_cache = true;
        let mut history = None;
        let mut expose = None;
        let mut crash_dir = None;
        let mut panic_after = None;
        let mut rest = Vec::new();
        let mut it = std::mem::take(args).into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => match it.next() {
                    Some(p) => path = Some(p),
                    None => usage_exit("--trace requires a file path"),
                },
                "--stream" => match it.next() {
                    Some(addr) => stream = Some(addr),
                    None => usage_exit("--stream requires an address (host:port or socket path)"),
                },
                "--clock" => match it.next().as_deref() {
                    Some("steps") => wall = false,
                    Some("wall") => wall = true,
                    Some(other) => {
                        usage_exit(&format!("unknown clock `{other}`; use `steps` or `wall`"))
                    }
                    None => usage_exit("--clock requires `steps` or `wall`"),
                },
                "--workers" => match it.next().map(|n| n.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => workers = Some(n),
                    Some(_) => usage_exit("--workers requires a positive integer"),
                    None => usage_exit("--workers requires a worker count"),
                },
                "--lineage" => lineage = true,
                "--attr" => attr = true,
                "--no-share-cache" => share_cache = false,
                "--history" => match it.next() {
                    Some(dir) => history = Some(dir),
                    None => usage_exit("--history requires a directory or .jsonl file"),
                },
                "--expose" => match it.next() {
                    Some(addr) => expose = Some(addr),
                    None => usage_exit("--expose requires an address (host:port or socket path)"),
                },
                "--crash-dir" => match it.next() {
                    Some(dir) => crash_dir = Some(dir),
                    None => usage_exit("--crash-dir requires a directory"),
                },
                "--panic-after" => match it.next().map(|n| n.parse::<u64>()) {
                    Some(Ok(n)) => panic_after = Some(n),
                    Some(_) => usage_exit("--panic-after requires a step count"),
                    None => usage_exit("--panic-after requires a step count"),
                },
                _ => rest.push(a),
            }
        }
        *args = rest;
        // The run id names the recorded stream on the consumer side and
        // the manifest/crash-bundle entries: the trace file stem, so
        // `live --record` writes the same file name the run itself would.
        let run = path
            .as_deref()
            .and_then(|p| std::path::Path::new(p).file_stem())
            .and_then(|s| s.to_str())
            .unwrap_or("bench")
            .to_string();
        let rec = if path.is_some() || stream.is_some() || expose.is_some() {
            let clock = if wall { Clock::wall() } else { Clock::steps() };
            let mut fan = FanoutRecorder::new(clock);
            if let Some(p) = path.as_deref() {
                let file = FileSink::create(p)
                    .unwrap_or_else(|e| usage_exit(&format!("cannot open {p}: {e}")));
                fan.add_sink(Box::new(file));
            }
            if let Some(addr) = stream.as_deref() {
                let sink = StreamSink::connect(addr, &run)
                    .unwrap_or_else(|e| usage_exit(&format!("cannot reach {addr}: {e}")));
                fan.add_sink(Box::new(sink));
            }
            if let Some(addr) = expose.as_deref() {
                let bound = fan
                    .expose(addr, &run)
                    .unwrap_or_else(|e| usage_exit(&format!("cannot expose on {addr}: {e}")));
                eprintln!("metrics exposed on {bound}");
            }
            Some(fan)
        } else {
            None
        };
        if lineage && rec.is_none() {
            usage_exit("--lineage requires --trace or --stream (lineage events go into the trace)");
        }
        if attr && rec.is_none() {
            usage_exit(
                "--attr requires --trace or --stream (attribution events go into the trace)",
            );
        }
        if history.is_some() && path.is_none() {
            usage_exit("--history requires --trace (the manifest is folded from the trace file)");
        }
        let meta = ManifestMeta {
            source: "bench".to_string(),
            run: run.clone(),
            git: manifest::git_rev(),
            seed: 0,
            config: String::new(),
        };
        let crash_guard = crash_dir.map(|dir| {
            let reproduce: Vec<String> = std::env::args().collect();
            CrashGuard::install(CrashContext {
                dir,
                run: run.clone(),
                reproduce: reproduce.join(" "),
                config: String::new(),
                trace_path: path.clone(),
                meta: meta.clone(),
            })
        });
        TraceSink {
            path,
            streamed: stream.is_some(),
            rec,
            workers,
            lineage,
            attr,
            share_cache,
            history,
            panic_after,
            run,
            meta,
            crash_guard,
        }
    }

    /// Whether `--lineage` was passed: the engine emits per-state
    /// exploration-tree events into the trace.
    pub fn lineage(&self) -> bool {
        self.lineage
    }

    /// Whether `--attr` was passed: the engine emits per-source-line
    /// `attr.*` cost counters and per-query provenance events into the
    /// trace, for `statsym-inspect hotspots|explain`.
    pub fn attr(&self) -> bool {
        self.attr
    }

    /// Whether solver verdicts are shared between portfolio workers
    /// (`--no-share-cache` turns sharing off). Sharing never changes
    /// what a worker explores — only how much solver work it spends —
    /// so disable it when solver-work counters must be independent of
    /// scheduling, e.g. for byte-reproducible trace comparisons.
    pub fn share_cache(&self) -> bool {
        self.share_cache
    }

    /// Worker threads for the guided execution stage (`--workers`,
    /// default 1: the sequential candidate loop).
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or(1)
    }

    /// The worker count only when `--workers` was passed explicitly —
    /// for binaries whose default is a sweep rather than a single count.
    pub fn explicit_workers(&self) -> Option<usize> {
        self.workers
    }

    /// The chaos threshold from `--panic-after`, for wiring into
    /// `EngineConfig::panic_after`.
    pub fn panic_after(&self) -> Option<u64> {
        self.panic_after
    }

    /// The run id (trace file stem, `bench` without `--trace`) stamped
    /// into manifests, crash bundles, and stream hello frames.
    pub fn run(&self) -> &str {
        &self.run
    }

    /// Records the run's manifest identity — the workload seed and the
    /// scheduling-canonical config fingerprint — once the binary has
    /// resolved its configuration. Also folded into the armed crash
    /// bundle (with `config_text` as its human-readable config dump), so
    /// call this before the engine starts.
    pub fn set_manifest_meta(&mut self, seed: u64, config: &str, config_text: &str) {
        self.meta.seed = seed;
        self.meta.config = config.to_string();
        if let Some(guard) = &self.crash_guard {
            let meta = self.meta.clone();
            let config_text = config_text.to_string();
            guard.update(move |ctx| {
                ctx.meta = meta;
                ctx.config = config_text;
            });
        }
    }

    /// The recorder to thread through the experiment: the fan-out
    /// recorder when `--trace` / `--stream` / `--expose` was given, the
    /// no-op recorder otherwise.
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.rec {
            Some(r) => r,
            None => &NOOP,
        }
    }

    /// Flushes the trace (appending the final metrics snapshot and the
    /// stream's end-of-run frame), appends the run manifest to the
    /// history archive when `--history` was given, disarms the crash
    /// hook, and reports where everything was written.
    ///
    /// # Panics
    ///
    /// Panics if the trace file or stream could not be written in full,
    /// or if the manifest could not be folded or appended.
    pub fn finish(self) {
        if let Some(rec) = self.rec {
            let path = self.path.clone().unwrap_or_default();
            rec.finish()
                .unwrap_or_else(|e| panic!("failed to write trace {path}: {e}"));
            if let Some(p) = &self.path {
                eprintln!("trace written to {p}");
            }
            if self.streamed {
                eprintln!("trace streamed");
            }
            if let Some(history) = &self.history {
                let p = self.path.as_deref().expect("--history requires --trace");
                let text = std::fs::read_to_string(p)
                    .unwrap_or_else(|e| panic!("cannot re-read trace {p}: {e}"));
                let m = RunManifest::from_trace(&text, &self.meta).unwrap_or_else(|e| {
                    panic!(
                        "trace {p} does not fold into a manifest (line {}): {}",
                        e.line, e.reason
                    )
                });
                let id = manifest::append_manifest(history, &m)
                    .unwrap_or_else(|e| panic!("cannot append manifest to {history}: {e}"));
                eprintln!(
                    "manifest {id} appended to {}",
                    manifest::history_path(history).display()
                );
            }
        }
        if let Some(guard) = &self.crash_guard {
            guard.disarm();
        }
    }
}
