//! `--trace <path>` / `--clock steps|wall` support for the bench
//! binaries: every table/figure binary can export a structured JSONL
//! trace of the run it just printed.
//!
//! With `--clock steps` the trace is stamped with the engine's logical
//! step counter instead of wall-clock time, making the file
//! byte-reproducible across runs under a fixed seed.

use statsym_telemetry::{Clock, FileRecorder, Recorder, NOOP};

/// Command-line trace options for a bench binary.
#[derive(Debug)]
pub struct TraceSink {
    path: Option<String>,
    rec: Option<FileRecorder>,
    workers: Option<usize>,
    lineage: bool,
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: [--trace <path>] [--clock steps|wall] [--workers <n>] [--lineage]");
    std::process::exit(2);
}

impl TraceSink {
    /// Parses `--trace <path>`, `--clock steps|wall`, and `--workers <n>`
    /// from the process arguments. Defaults to the deterministic step
    /// clock so fixed-seed runs produce byte-identical trace files, and
    /// to a single worker (the sequential candidate loop).
    ///
    /// Exits with status 2 (and a usage message on stderr) on a
    /// malformed command line, an unrecognized flag, or an unwritable
    /// trace path. Binaries with their own flags should call
    /// [`TraceSink::extract`] instead.
    pub fn from_args() -> TraceSink {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let sink = TraceSink::extract(&mut args);
        if let Some(other) = args.first() {
            usage_exit(&format!("unknown argument `{other}`"));
        }
        sink
    }

    /// Pulls the trace flags (`--trace`, `--clock`, `--workers`) out of
    /// `args`, leaving every unrecognized argument in place for the
    /// caller to parse — how binaries combine their own flags with the
    /// shared trace options.
    ///
    /// Exits with status 2 on a malformed trace flag or an unwritable
    /// trace path.
    pub fn extract(args: &mut Vec<String>) -> TraceSink {
        let mut path = None;
        let mut wall = false;
        let mut workers = None;
        let mut lineage = false;
        let mut rest = Vec::new();
        let mut it = std::mem::take(args).into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => match it.next() {
                    Some(p) => path = Some(p),
                    None => usage_exit("--trace requires a file path"),
                },
                "--clock" => match it.next().as_deref() {
                    Some("steps") => wall = false,
                    Some("wall") => wall = true,
                    Some(other) => {
                        usage_exit(&format!("unknown clock `{other}`; use `steps` or `wall`"))
                    }
                    None => usage_exit("--clock requires `steps` or `wall`"),
                },
                "--workers" => match it.next().map(|n| n.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => workers = Some(n),
                    Some(_) => usage_exit("--workers requires a positive integer"),
                    None => usage_exit("--workers requires a worker count"),
                },
                "--lineage" => lineage = true,
                _ => rest.push(a),
            }
        }
        *args = rest;
        let rec = path.as_deref().map(|p| {
            let clock = if wall { Clock::wall() } else { Clock::steps() };
            FileRecorder::create(p, clock)
                .unwrap_or_else(|e| usage_exit(&format!("cannot open {p}: {e}")))
        });
        if lineage && path.is_none() {
            usage_exit("--lineage requires --trace (lineage events go into the trace file)");
        }
        TraceSink {
            path,
            rec,
            workers,
            lineage,
        }
    }

    /// Whether `--lineage` was passed: the engine emits per-state
    /// exploration-tree events into the trace.
    pub fn lineage(&self) -> bool {
        self.lineage
    }

    /// Worker threads for the guided execution stage (`--workers`,
    /// default 1: the sequential candidate loop).
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or(1)
    }

    /// The worker count only when `--workers` was passed explicitly —
    /// for binaries whose default is a sweep rather than a single count.
    pub fn explicit_workers(&self) -> Option<usize> {
        self.workers
    }

    /// The recorder to thread through the experiment: the file recorder
    /// when `--trace` was given, the no-op recorder otherwise.
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.rec {
            Some(r) => r,
            None => &NOOP,
        }
    }

    /// Flushes the trace (appending the final metrics snapshot) and
    /// reports where it was written.
    ///
    /// # Panics
    ///
    /// Panics if the trace file could not be written in full.
    pub fn finish(self) {
        if let Some(rec) = self.rec {
            let path = self.path.unwrap_or_default();
            rec.finish()
                .unwrap_or_else(|e| panic!("failed to write trace {path}: {e}"));
            eprintln!("trace written to {path}");
        }
    }
}
