//! `--trace <path>` / `--stream <addr>` / `--clock steps|wall` support
//! for the bench binaries: every table/figure binary can export a
//! structured JSONL trace of the run it just printed — to a file, to a
//! live `statsym-inspect live` consumer, or both at once.
//!
//! With `--clock steps` the trace is stamped with the engine's logical
//! step counter instead of wall-clock time, making the file
//! byte-reproducible across runs under a fixed seed. Fan-out is handled
//! by [`FanoutRecorder`]: the file and the stream see the same event
//! lines, so a stream recorded by `statsym-inspect live --record` is
//! byte-identical to the `--trace` file.

use statsym_telemetry::{Clock, FanoutRecorder, FileSink, Recorder, StreamSink, NOOP};

/// Command-line trace options for a bench binary.
#[derive(Debug)]
pub struct TraceSink {
    path: Option<String>,
    streamed: bool,
    rec: Option<FanoutRecorder>,
    workers: Option<usize>,
    lineage: bool,
    attr: bool,
    share_cache: bool,
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: [--trace <path>] [--stream <addr>] [--clock steps|wall] [--workers <n>] \
         [--lineage] [--attr] [--no-share-cache]"
    );
    std::process::exit(2);
}

impl TraceSink {
    /// Parses `--trace <path>`, `--stream <addr>`, `--clock steps|wall`,
    /// and `--workers <n>` from the process arguments. Defaults to the
    /// deterministic step clock so fixed-seed runs produce byte-identical
    /// trace files, and to a single worker (the sequential candidate
    /// loop).
    ///
    /// Exits with status 2 (and a usage message on stderr) on a
    /// malformed command line, an unrecognized flag, or an unwritable
    /// trace path. Binaries with their own flags should call
    /// [`TraceSink::extract`] instead.
    pub fn from_args() -> TraceSink {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let sink = TraceSink::extract(&mut args);
        if let Some(other) = args.first() {
            usage_exit(&format!("unknown argument `{other}`"));
        }
        sink
    }

    /// Pulls the trace flags (`--trace`, `--stream`, `--clock`,
    /// `--workers`, `--lineage`, `--attr`, `--no-share-cache`) out of
    /// `args`, leaving every unrecognized argument in place for the
    /// caller to parse — how binaries combine their own flags with the
    /// shared trace options.
    ///
    /// `--stream` dials a `statsym-inspect live` listener (TCP
    /// `host:port`, or a Unix socket path containing `/`), retrying for
    /// a few seconds so a consumer started in parallel wins the race.
    /// The stream's run id is the `--trace` file stem (or `bench`
    /// without `--trace`).
    ///
    /// Exits with status 2 on a malformed trace flag, an unwritable
    /// trace path, or an unreachable stream address.
    pub fn extract(args: &mut Vec<String>) -> TraceSink {
        let mut path = None;
        let mut stream = None;
        let mut wall = false;
        let mut workers = None;
        let mut lineage = false;
        let mut attr = false;
        let mut share_cache = true;
        let mut rest = Vec::new();
        let mut it = std::mem::take(args).into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => match it.next() {
                    Some(p) => path = Some(p),
                    None => usage_exit("--trace requires a file path"),
                },
                "--stream" => match it.next() {
                    Some(addr) => stream = Some(addr),
                    None => usage_exit("--stream requires an address (host:port or socket path)"),
                },
                "--clock" => match it.next().as_deref() {
                    Some("steps") => wall = false,
                    Some("wall") => wall = true,
                    Some(other) => {
                        usage_exit(&format!("unknown clock `{other}`; use `steps` or `wall`"))
                    }
                    None => usage_exit("--clock requires `steps` or `wall`"),
                },
                "--workers" => match it.next().map(|n| n.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => workers = Some(n),
                    Some(_) => usage_exit("--workers requires a positive integer"),
                    None => usage_exit("--workers requires a worker count"),
                },
                "--lineage" => lineage = true,
                "--attr" => attr = true,
                "--no-share-cache" => share_cache = false,
                _ => rest.push(a),
            }
        }
        *args = rest;
        let rec = if path.is_some() || stream.is_some() {
            let clock = if wall { Clock::wall() } else { Clock::steps() };
            let mut fan = FanoutRecorder::new(clock);
            if let Some(p) = path.as_deref() {
                let file = FileSink::create(p)
                    .unwrap_or_else(|e| usage_exit(&format!("cannot open {p}: {e}")));
                fan.add_sink(Box::new(file));
            }
            if let Some(addr) = stream.as_deref() {
                // The run id names the recorded stream on the consumer
                // side: the trace file stem, so `live --record` writes
                // the same file name the run itself would.
                let run = path
                    .as_deref()
                    .and_then(|p| std::path::Path::new(p).file_stem())
                    .and_then(|s| s.to_str())
                    .unwrap_or("bench");
                let sink = StreamSink::connect(addr, run)
                    .unwrap_or_else(|e| usage_exit(&format!("cannot reach {addr}: {e}")));
                fan.add_sink(Box::new(sink));
            }
            Some(fan)
        } else {
            None
        };
        if lineage && rec.is_none() {
            usage_exit("--lineage requires --trace or --stream (lineage events go into the trace)");
        }
        if attr && rec.is_none() {
            usage_exit(
                "--attr requires --trace or --stream (attribution events go into the trace)",
            );
        }
        TraceSink {
            path,
            streamed: stream.is_some(),
            rec,
            workers,
            lineage,
            attr,
            share_cache,
        }
    }

    /// Whether `--lineage` was passed: the engine emits per-state
    /// exploration-tree events into the trace.
    pub fn lineage(&self) -> bool {
        self.lineage
    }

    /// Whether `--attr` was passed: the engine emits per-source-line
    /// `attr.*` cost counters and per-query provenance events into the
    /// trace, for `statsym-inspect hotspots|explain`.
    pub fn attr(&self) -> bool {
        self.attr
    }

    /// Whether solver verdicts are shared between portfolio workers
    /// (`--no-share-cache` turns sharing off). Sharing never changes
    /// what a worker explores — only how much solver work it spends —
    /// so disable it when solver-work counters must be independent of
    /// scheduling, e.g. for byte-reproducible trace comparisons.
    pub fn share_cache(&self) -> bool {
        self.share_cache
    }

    /// Worker threads for the guided execution stage (`--workers`,
    /// default 1: the sequential candidate loop).
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or(1)
    }

    /// The worker count only when `--workers` was passed explicitly —
    /// for binaries whose default is a sweep rather than a single count.
    pub fn explicit_workers(&self) -> Option<usize> {
        self.workers
    }

    /// The recorder to thread through the experiment: the fan-out
    /// recorder when `--trace` / `--stream` was given, the no-op
    /// recorder otherwise.
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.rec {
            Some(r) => r,
            None => &NOOP,
        }
    }

    /// Flushes the trace (appending the final metrics snapshot and the
    /// stream's end-of-run frame) and reports where it was written.
    ///
    /// # Panics
    ///
    /// Panics if the trace file or stream could not be written in full.
    pub fn finish(self) {
        if let Some(rec) = self.rec {
            let path = self.path.clone().unwrap_or_default();
            rec.finish()
                .unwrap_or_else(|e| panic!("failed to write trace {path}: {e}"));
            if let Some(p) = self.path {
                eprintln!("trace written to {p}");
            }
            if self.streamed {
                eprintln!("trace streamed");
            }
        }
    }
}
