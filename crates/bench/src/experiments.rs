//! Shared experiment runners used by every table/figure binary.

use benchapps::{generate_corpus, BenchApp, CorpusSpec};
use statsym_core::pipeline::{StatSym, StatSymConfig, StatSymReport};
use symex::{Engine, EngineConfig, EngineReport, SchedulerKind};
use std::time::Duration;

/// Deterministic seed used by all paper experiments.
pub const PAPER_SEED: u64 = 2017;

/// Default sampling rate for the headline tables (paper Table III/IV use
/// 30%).
pub const DEFAULT_SAMPLING: f64 = 0.3;

/// Modeled memory budget for the symbolic engines. The paper's KLEE runs
/// fail with out-of-memory on a 12 GB machine against full-size
/// programs; our programs are scaled ~32× down, so the budget scales to
/// 64 MiB (modeled bytes, tracked by the engine).
pub const DEFAULT_MEMORY_BUDGET: usize = 64 << 20;

/// Wall-clock cap for the pure baseline (the paper allows KLEE 8 hours;
/// scaled to keep the full table under a minute per app).
pub const DEFAULT_PURE_TIME_BUDGET: Duration = Duration::from_secs(120);

/// The StatSym configuration used by the paper experiments.
pub fn statsym_config() -> StatSymConfig {
    StatSymConfig {
        engine: EngineConfig {
            scheduler: SchedulerKind::Priority,
            memory_budget: DEFAULT_MEMORY_BUDGET,
            // The paper gives each candidate path 15 minutes; scaled.
            time_budget: Some(Duration::from_secs(30)),
            ..EngineConfig::default()
        },
        ..StatSymConfig::default()
    }
}

/// The pure-symbolic-execution (KLEE baseline) configuration.
pub fn pure_engine_config() -> EngineConfig {
    EngineConfig {
        scheduler: SchedulerKind::Bfs,
        memory_budget: DEFAULT_MEMORY_BUDGET,
        time_budget: Some(DEFAULT_PURE_TIME_BUDGET),
        ..EngineConfig::default()
    }
}

/// A full StatSym run on one app: corpus generation + pipeline.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The app name.
    pub app: &'static str,
    /// Number of logs used.
    pub n_logs: usize,
    /// The pipeline report (analysis + guided execution).
    pub report: StatSymReport,
}

/// Runs the complete StatSym pipeline on `app` at the given sampling
/// rate (paper §VII-A: 100 correct + 100 faulty logs).
pub fn run_statsym(app: &BenchApp, sampling_rate: f64, seed: u64) -> ExperimentResult {
    run_statsym_sized(app, sampling_rate, seed, 100, 100)
}

/// [`run_statsym`] with an explicit corpus size (used by quick benches).
pub fn run_statsym_sized(
    app: &BenchApp,
    sampling_rate: f64,
    seed: u64,
    n_correct: usize,
    n_faulty: usize,
) -> ExperimentResult {
    let logs = generate_corpus(
        app,
        CorpusSpec {
            n_correct,
            n_faulty,
            sampling_rate,
            seed,
        },
    );
    let statsym = StatSym::new(statsym_config());
    let analysis = statsym.analyze(&logs);
    let report = run_guided(app, &statsym, analysis);
    ExperimentResult {
        app: app.name,
        n_logs: logs.len(),
        report,
    }
}

/// Runs guided symbolic execution from a precomputed analysis, applying
/// the app's pinned option inputs to every candidate attempt.
fn run_guided(
    app: &BenchApp,
    statsym: &StatSym,
    analysis: statsym_core::pipeline::AnalysisReport,
) -> StatSymReport {
    // Reimplements StatSym::run_with_analysis with input pinning: the
    // paper configures required program options for both engines.
    use statsym_core::pipeline::CandidateAttempt;
    use statsym_core::GuidedHook;
    let start = std::time::Instant::now();
    let mut attempts: Vec<CandidateAttempt> = Vec::new();
    let mut found = None;
    let mut candidate_used = None;
    let paths = analysis
        .candidates
        .as_ref()
        .map(|c| c.paths.clone())
        .unwrap_or_default();
    for (index, path) in paths.into_iter().enumerate() {
        let path_len = path.len();
        let hook = GuidedHook::new(path, statsym.config().guidance);
        let mut engine = Engine::with_hook(&app.module, statsym.config().engine, Box::new(hook));
        for (name, value) in &app.pins {
            engine.pin_input(name.clone(), value.clone());
        }
        let report = engine.run();
        let hit = report.outcome.is_found();
        attempts.push(CandidateAttempt {
            index,
            path_len,
            found: hit,
            wall_time: report.wall_time,
            stats: report.stats,
        });
        if let symex::RunOutcome::Found(f) = report.outcome {
            found = Some(*f);
            candidate_used = Some(index);
            break;
        }
    }
    StatSymReport {
        analysis,
        attempts,
        found,
        candidate_used,
        symex_time: start.elapsed(),
    }
}

/// A pure symbolic execution (KLEE baseline) run.
#[derive(Debug)]
pub struct PureResult {
    /// The app name.
    pub app: &'static str,
    /// The engine report.
    pub report: EngineReport,
}

/// Runs the unguided baseline on `app` with the same pinned options.
pub fn run_pure(app: &BenchApp, config: EngineConfig) -> PureResult {
    let mut engine = Engine::new(&app.module, config);
    for (name, value) in &app.pins {
        engine.pin_input(name.clone(), value.clone());
    }
    PureResult {
        app: app.name,
        report: engine.run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivating_example_pure_vs_guided() {
        // Figure 2: guided execution needs far fewer states than pure on
        // the paper's sample program.
        let app = benchapps::motivating();
        let pure = run_pure(&app, pure_engine_config());
        assert!(pure.report.outcome.is_found(), "{:?}", pure.report.outcome);

        let guided = run_statsym_sized(&app, 1.0, PAPER_SEED, 20, 20);
        let found = guided.report.found.as_ref().expect("guided finds fault");
        assert_eq!(found.fault.func, "vul_func");
        assert!(
            guided.report.total_paths_explored() <= pure.report.stats.paths_explored,
            "guided {} <= pure {}",
            guided.report.total_paths_explored(),
            pure.report.stats.paths_explored
        );
    }
}
