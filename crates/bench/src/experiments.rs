//! Shared experiment runners used by every table/figure binary.

use benchapps::{generate_corpus_traced, BenchApp, CorpusSpec};
use statsym_core::pipeline::{StatSym, StatSymConfig, StatSymReport};
use statsym_telemetry::{Recorder, NOOP};
use std::time::Duration;
use symex::{Engine, EngineConfig, EngineReport, SchedulerKind};

/// Deterministic seed used by all paper experiments.
pub const PAPER_SEED: u64 = 2017;

/// Default sampling rate for the headline tables (paper Table III/IV use
/// 30%).
pub const DEFAULT_SAMPLING: f64 = 0.3;

/// Modeled memory budget for the symbolic engines. The paper's KLEE runs
/// fail with out-of-memory on a 12 GB machine against full-size
/// programs; our programs are scaled ~32× down, so the budget scales to
/// 64 MiB (modeled bytes, tracked by the engine).
pub const DEFAULT_MEMORY_BUDGET: usize = 64 << 20;

/// Wall-clock cap for the pure baseline (the paper allows KLEE 8 hours;
/// scaled to keep the full table under a minute per app).
pub const DEFAULT_PURE_TIME_BUDGET: Duration = Duration::from_secs(120);

/// The StatSym configuration used by the paper experiments.
pub fn statsym_config() -> StatSymConfig {
    StatSymConfig {
        engine: EngineConfig {
            scheduler: SchedulerKind::Priority,
            memory_budget: DEFAULT_MEMORY_BUDGET,
            // The paper gives each candidate path 15 minutes; scaled.
            time_budget: Some(Duration::from_secs(30)),
            ..EngineConfig::default()
        },
        ..StatSymConfig::default()
    }
}

/// The pure-symbolic-execution (KLEE baseline) configuration.
pub fn pure_engine_config() -> EngineConfig {
    EngineConfig {
        scheduler: SchedulerKind::Bfs,
        memory_budget: DEFAULT_MEMORY_BUDGET,
        time_budget: Some(DEFAULT_PURE_TIME_BUDGET),
        ..EngineConfig::default()
    }
}

/// A full StatSym run on one app: corpus generation + pipeline.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The app name.
    pub app: &'static str,
    /// Number of logs used.
    pub n_logs: usize,
    /// The pipeline report (analysis + guided execution).
    pub report: StatSymReport,
}

/// Runs the complete StatSym pipeline on `app` at the given sampling
/// rate (paper §VII-A: 100 correct + 100 faulty logs).
pub fn run_statsym(app: &BenchApp, sampling_rate: f64, seed: u64) -> ExperimentResult {
    run_statsym_sized(app, sampling_rate, seed, 100, 100)
}

/// [`run_statsym`] with an explicit corpus size (used by quick benches).
pub fn run_statsym_sized(
    app: &BenchApp,
    sampling_rate: f64,
    seed: u64,
    n_correct: usize,
    n_faulty: usize,
) -> ExperimentResult {
    run_statsym_traced(app, sampling_rate, seed, n_correct, n_faulty, &NOOP)
}

/// [`run_statsym_sized`] with a telemetry recorder threaded through
/// corpus generation, statistical analysis, and guided execution.
pub fn run_statsym_traced(
    app: &BenchApp,
    sampling_rate: f64,
    seed: u64,
    n_correct: usize,
    n_faulty: usize,
    rec: &dyn Recorder,
) -> ExperimentResult {
    run_statsym_workers_traced(app, sampling_rate, seed, n_correct, n_faulty, 1, rec)
}

/// Execution-stage options the bench binaries expose as shared flags
/// (`--workers`, `--lineage`, `--attr`, `--no-share-cache`).
#[derive(Debug, Clone, Copy)]
pub struct GuidedRunOpts {
    /// Worker threads for the guided execution stage: `1` runs the
    /// sequential candidate loop, more runs the candidates as a
    /// parallel portfolio with identical results.
    pub workers: usize,
    /// Emit per-state exploration-tree lineage events into the trace.
    pub lineage: bool,
    /// Emit per-source-line `attr.*` cost counters and per-query
    /// provenance events into the trace (`statsym-inspect
    /// hotspots|explain`).
    pub attr: bool,
    /// Share solver verdicts between portfolio workers. Never changes
    /// what a worker explores, only how much solver work it spends —
    /// turn off for schedule-independent solver-work counters.
    pub share_cache: bool,
}

impl Default for GuidedRunOpts {
    fn default() -> Self {
        GuidedRunOpts {
            workers: 1,
            lineage: false,
            attr: false,
            share_cache: true,
        }
    }
}

/// [`run_statsym_traced`] with an explicit worker count for the guided
/// execution stage (the bench binaries expose this as `--workers`).
pub fn run_statsym_workers_traced(
    app: &BenchApp,
    sampling_rate: f64,
    seed: u64,
    n_correct: usize,
    n_faulty: usize,
    workers: usize,
    rec: &dyn Recorder,
) -> ExperimentResult {
    run_statsym_opts_traced(
        app,
        sampling_rate,
        seed,
        n_correct,
        n_faulty,
        GuidedRunOpts {
            workers,
            ..GuidedRunOpts::default()
        },
        rec,
    )
}

/// The exact pipeline configuration [`run_statsym_opts_traced`] runs
/// with — exposed so bench binaries can fingerprint it for run
/// manifests and crash bundles.
pub fn guided_config(opts: &GuidedRunOpts) -> StatSymConfig {
    let base = statsym_config();
    StatSymConfig {
        workers: opts.workers,
        share_cache: opts.share_cache,
        engine: EngineConfig {
            lineage: opts.lineage,
            attribution: opts.attr,
            provenance: opts.attr,
            ..base.engine
        },
        ..base
    }
}

/// [`run_statsym_workers_traced`] with the full execution-stage option
/// set, including lineage tracing.
pub fn run_statsym_opts_traced(
    app: &BenchApp,
    sampling_rate: f64,
    seed: u64,
    n_correct: usize,
    n_faulty: usize,
    opts: GuidedRunOpts,
    rec: &dyn Recorder,
) -> ExperimentResult {
    let logs = generate_corpus_traced(
        app,
        CorpusSpec {
            n_correct,
            n_faulty,
            sampling_rate,
            seed,
        },
        rec,
    );
    let statsym = StatSym::new(guided_config(&opts));
    let analysis = statsym.analyze_traced(&logs, rec);
    // The paper configures required program options for both engines:
    // pin them on every candidate attempt.
    let report = statsym.run_with_analysis_pinned_traced(&app.module, analysis, &app.pins, rec);
    ExperimentResult {
        app: app.name,
        n_logs: logs.len(),
        report,
    }
}

/// A pure symbolic execution (KLEE baseline) run.
#[derive(Debug)]
pub struct PureResult {
    /// The app name.
    pub app: &'static str,
    /// The engine report.
    pub report: EngineReport,
}

/// Runs the unguided baseline on `app` with the same pinned options.
pub fn run_pure(app: &BenchApp, config: EngineConfig) -> PureResult {
    run_pure_traced(app, config, &NOOP)
}

/// [`run_pure`] with a telemetry recorder on the engine.
pub fn run_pure_traced(app: &BenchApp, config: EngineConfig, rec: &dyn Recorder) -> PureResult {
    let mut engine = Engine::new(&app.module, config);
    engine.set_recorder(rec);
    for (name, value) in &app.pins {
        engine.pin_input(name.clone(), value.clone());
    }
    PureResult {
        app: app.name,
        report: engine.run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivating_example_pure_vs_guided() {
        // Figure 2: guided execution needs far fewer states than pure on
        // the paper's sample program.
        let app = benchapps::motivating();
        let pure = run_pure(&app, pure_engine_config());
        assert!(pure.report.outcome.is_found(), "{:?}", pure.report.outcome);

        let guided = run_statsym_sized(&app, 1.0, PAPER_SEED, 20, 20);
        let found = guided.report.found.as_ref().expect("guided finds fault");
        assert_eq!(found.fault.func, "vul_func");
        assert!(
            guided.report.total_paths_explored() <= pure.report.stats.paths_explored,
            "guided {} <= pure {}",
            guided.report.total_paths_explored(),
            pure.report.stats.paths_explored
        );
    }
}
