//! Experiment harness: runs the paper's evaluation (Tables I–V and
//! Figures 2, 7, 9, 10) against the `benchapps` targets and formats the
//! results in the paper's layout.
//!
//! Every binary in `src/bin/` regenerates exactly one table or figure;
//! `benches/paper.rs` wraps the same experiments in Criterion for timing
//! stability. Absolute times differ from the paper's 2008-era testbed —
//! the *shape* (who wins, who fails, which module dominates) is the
//! reproduction target; see EXPERIMENTS.md.

pub mod experiments;
pub mod format;
pub mod trace;

pub use experiments::{
    guided_config, pure_engine_config, run_pure, run_pure_traced, run_statsym,
    run_statsym_opts_traced, run_statsym_sized, run_statsym_traced, run_statsym_workers_traced,
    statsym_config, ExperimentResult, GuidedRunOpts, PureResult, DEFAULT_MEMORY_BUDGET,
    DEFAULT_PURE_TIME_BUDGET, DEFAULT_SAMPLING, PAPER_SEED,
};
pub use format::Table;
pub use trace::TraceSink;
