//! Telemetry overhead benchmark: pure symbolic execution on the
//! motivating example (Figure 2 workload) with the no-op recorder, an
//! in-memory recorder, and a file recorder writing to a sink buffer.
//!
//! The engine always carries a recorder reference, so the
//! `noop_recorder` number *is* the instrumented-but-disabled cost;
//! compare it against the same benchmark on a pre-telemetry checkout to
//! bound the overhead (acceptance target: within 2%). The other two
//! benchmarks price in what enabling recording costs.

use bench::{pure_engine_config, run_pure, run_pure_traced};
use criterion::{criterion_group, criterion_main, Criterion};
use statsym_telemetry::{Clock, FileRecorder, MemRecorder};
use std::hint::black_box;
use std::time::Duration;

fn bench_noop_overhead(c: &mut Criterion) {
    let app = benchapps::motivating();
    let mut group = c.benchmark_group("telemetry/noop_overhead");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("noop_recorder", |b| {
        b.iter(|| black_box(run_pure(&app, pure_engine_config())))
    });

    group.bench_function("mem_recorder", |b| {
        b.iter(|| {
            let rec = MemRecorder::new(Clock::steps());
            let r = run_pure_traced(&app, pure_engine_config(), &rec);
            black_box((r, rec.finish().len()))
        })
    });

    group.bench_function("file_recorder_sink", |b| {
        b.iter(|| {
            let rec = FileRecorder::from_writer(Box::new(std::io::sink()), Clock::steps());
            let r = run_pure_traced(&app, pure_engine_config(), &rec);
            rec.finish().unwrap();
            black_box(r)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_noop_overhead);
criterion_main!(benches);
