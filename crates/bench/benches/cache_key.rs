//! Solver cache-key micro-benchmark: the legacy sort-and-rehash key
//! against [`TermCtx::query_fingerprint`].
//!
//! `check_inner` computes a cache key for *every* feasibility query, so
//! the key is on the engine's hottest path. The legacy key collected the
//! query into a `Vec<&Constraint>`, sorted it, and streamed the whole
//! vector through `DefaultHasher` — O(n log n) with an allocation per
//! query. The fingerprint is a commutative fold over precomputed
//! per-constraint structural hashes: O(n), allocation-free, and
//! order-independent by construction. This bench prices both on query
//! sizes spanning a shallow branch check to a deep path condition.

use criterion::{criterion_group, criterion_main, Criterion};
use solver::{CmpOp, Constraint, TermCtx};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::hint::black_box;

/// The pre-fingerprint cache key, verbatim: sort a borrowed copy of the
/// query, then hash the sorted sequence.
fn legacy_key(constraints: &[Constraint]) -> u64 {
    let mut sorted: Vec<&Constraint> = constraints.iter().collect();
    sorted.sort_by_key(|c| (c.lhs, c.rhs, c.op as u8));
    let mut h = DefaultHasher::new();
    sorted.hash(&mut h);
    h.finish()
}

/// A path-condition-shaped query: a chain of comparisons over derived
/// terms, the way the executor accumulates branch constraints.
fn query(ctx: &mut TermCtx, n: usize) -> Vec<Constraint> {
    let vars: Vec<_> = (0..8)
        .map(|i| ctx.new_var(format!("v{i}"), 0, 255))
        .collect();
    (0..n)
        .map(|i| {
            let a = vars[i % vars.len()];
            let b = vars[(i + 3) % vars.len()];
            let k = ctx.int(i as i64 % 7);
            let lhs = ctx.add(a, k);
            let op = match i % 3 {
                0 => CmpOp::Lt,
                1 => CmpOp::Le,
                _ => CmpOp::Ne,
            };
            Constraint::new(op, lhs, b)
        })
        .collect()
}

fn bench_cache_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/cache_key");
    for n in [4usize, 32, 256] {
        let mut ctx = TermCtx::new();
        let q = query(&mut ctx, n);
        group.bench_function(format!("legacy_sort_hash/{n}"), |b| {
            b.iter(|| black_box(legacy_key(black_box(&q))))
        });
        group.bench_function(format!("query_fingerprint/{n}"), |b| {
            b.iter(|| black_box(ctx.query_fingerprint(black_box(&q))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_key);
criterion_main!(benches);
