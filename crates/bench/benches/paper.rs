//! Criterion benchmarks — one per paper table/figure — so every
//! experiment's cost is measured under a stable harness.
//!
//! Corpus sizes are reduced relative to the printable binaries to keep
//! `cargo bench` wall-time reasonable; the binaries in `src/bin/` run
//! the full paper-scale experiments.

use bench::{pure_engine_config, run_pure, run_statsym_sized, PAPER_SEED};
use benchapps::{generate_corpus, CorpusSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use statsym_core::pipeline::StatSym;
use std::hint::black_box;
use std::time::Duration;

fn spec(rate: f64) -> CorpusSpec {
    CorpusSpec {
        n_correct: 30,
        n_faulty: 30,
        sampling_rate: rate,
        seed: PAPER_SEED,
    }
}

/// Table I: program statistics extraction.
fn bench_table1_program_stats(c: &mut Criterion) {
    let apps = benchapps::all_apps();
    c.bench_function("table1/program_stats", |b| {
        b.iter(|| {
            for app in &apps {
                black_box(app.stats());
            }
        })
    });
}

/// Tables II/III: the statistical analysis module (predicates +
/// candidate paths) at both sampling rates.
fn bench_table2_3_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_3/statistical_analysis");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (label, rate) in [("sampling_100", 1.0), ("sampling_30", 0.3)] {
        for app in benchapps::all_apps() {
            let logs = generate_corpus(&app, spec(rate));
            group.bench_function(format!("{label}/{}", app.name), |b| {
                let statsym = StatSym::default();
                b.iter(|| black_box(statsym.analyze(&logs)))
            });
        }
    }
    group.finish();
}

/// Table IV, guided side: the full StatSym pipeline per app.
fn bench_table4_statsym(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/statsym");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for app in benchapps::all_apps() {
        group.bench_function(app.name, |b| {
            b.iter(|| black_box(run_statsym_sized(&app, 0.3, PAPER_SEED, 30, 30)))
        });
    }
    group.finish();
}

/// Table IV, baseline side: pure symbolic execution. Only polymorph
/// terminates with a find; the other three stop at the memory budget
/// (the paper's `Failed` rows), which is exactly the cost measured.
fn bench_table4_pure(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/pure_symex");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    for app in benchapps::all_apps() {
        group.bench_function(app.name, |b| {
            b.iter(|| black_box(run_pure(&app, pure_engine_config())))
        });
    }
    group.finish();
}

/// Table V / Fig 8: predicate construction and ranking for polymorph.
fn bench_table5_predicates(c: &mut Criterion) {
    let app = benchapps::polymorph();
    let logs = generate_corpus(&app, spec(0.3));
    let corpus = statsym_core::LogCorpus::build(&logs);
    c.bench_function("table5/predicate_ranking", |b| {
        b.iter(|| black_box(statsym_core::PredicateSet::build(&corpus)))
    });
}

/// Figure 2: motivating example, guided vs pure.
fn bench_fig2_motivating(c: &mut Criterion) {
    let app = benchapps::motivating();
    let mut group = c.benchmark_group("fig2/motivating");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("pure", |b| {
        b.iter(|| black_box(run_pure(&app, pure_engine_config())))
    });
    group.bench_function("guided", |b| {
        b.iter(|| black_box(run_statsym_sized(&app, 1.0, PAPER_SEED, 20, 20)))
    });
    group.finish();
}

/// Figure 7 / Figure 9: candidate path construction.
fn bench_fig7_9_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_9/candidate_paths");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for app in benchapps::all_apps() {
        let logs = generate_corpus(&app, spec(0.3));
        let statsym = StatSym::default();
        group.bench_function(app.name, |b| {
            b.iter(|| {
                let analysis = statsym.analyze(&logs);
                black_box(analysis.n_candidates())
            })
        });
    }
    group.finish();
}

/// Figure 10: sampling-rate sensitivity for polymorph and CTree.
fn bench_fig10_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/sampling_sensitivity");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for app in [benchapps::polymorph(), benchapps::ctree()] {
        for pct in [20u32, 60, 100] {
            group.bench_function(format!("{}/{}pct", app.name, pct), |b| {
                b.iter(|| {
                    black_box(run_statsym_sized(
                        &app,
                        pct as f64 / 100.0,
                        PAPER_SEED,
                        30,
                        30,
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    paper,
    bench_table1_program_stats,
    bench_table2_3_analysis,
    bench_table4_statsym,
    bench_table4_pure,
    bench_table5_predicates,
    bench_fig2_motivating,
    bench_fig7_9_candidates,
    bench_fig10_sampling
);
criterion_main!(paper);
