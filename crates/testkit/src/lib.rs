//! `testkit` — generative differential testing and fault injection for
//! the whole StatSym pipeline (DESIGN.md §11).
//!
//! The paper's core claim (§4, Fig. 5) is an *equivalence*: guided
//! symbolic execution finds the same vulnerable paths as exhaustive
//! exploration, only faster. The hand-written tests pin that on a few
//! fixed programs; this crate checks it at scale:
//!
//! * [`gen`] mints well-typed minic programs from integer seeds,
//!   composing the five [`concrete::FaultKind`] classes behind input
//!   guards;
//! * [`oracles`] runs four differential/metamorphic oracles per
//!   program — exhaustive↔guided completeness, model→VM replay,
//!   portfolio↔sequential identity, and cache-configuration
//!   invariance;
//! * [`chaos`] injects deterministic solver/cache faults and asserts
//!   the engine degrades gracefully (suspends or exhausts, never
//!   panics, never reports a wrong fault);
//! * [`shrink`] greedily reduces a failing program to a minimal
//!   reproducer, reported with its seed by [`runner`] and the
//!   `statsym-testkit` binary.
//!
//! Everything is seed-deterministic: a CI failure prints `--seeds N..M`
//! plus the shrunk source, and that exact invocation reproduces it.

pub mod chaos;
pub mod corpus;
pub mod gen;
pub mod oracles;
pub mod runner;
pub mod shrink;

pub use chaos::{ChaosCache, ChaosSchedule};
pub use gen::{generate, sample_inputs, FaultClass, Generated};
pub use oracles::{Oracle, OracleFailure, OracleOutcome};
pub use runner::{run_seeds, RunnerConfig, RunnerReport};
pub use shrink::shrink;
