//! Greedy structural shrinker: reduces a failing program to a minimal
//! reproducer.
//!
//! The vendored `proptest` stand-in has no shrinking, so the testkit
//! carries its own, specialised to minic ASTs. Classic greedy descent:
//! propose single-step mutations (drop a function, drop a global, drop
//! or flatten a statement, halve a literal or buffer capacity), keep
//! the first mutant that still fails the oracle *and* renders smaller,
//! and repeat until no mutation helps. Every accepted mutant is
//! round-tripped through the pretty-printer and parser, so the result
//! is always a well-typed program whose rendered source reproduces the
//! failure verbatim.

use minic::ast::{Block, Expr, ExprKind, Program, Stmt, StmtKind, Type};
use minic::{parse_program, print_program};

/// Shrinks `program` while `still_fails` keeps returning `true` on the
/// mutant. The predicate is only called on well-typed programs; the
/// returned program still fails it (or is the input if nothing could
/// be removed).
pub fn shrink(program: &Program, still_fails: &mut dyn FnMut(&Program) -> bool) -> Program {
    let mut current = match revalidate(program) {
        Some(p) => p,
        None => program.clone(),
    };
    let mut size = weight(&current);
    loop {
        // Best-first: probe the lightest viable mutant before heavier
        // ones, so a heap-intrinsic-shedding drop wins over an earlier
        // text-only reduction (first-improvement order would lock in a
        // shorter double-free before trying to drop the second free).
        let mut viable: Vec<_> = candidates(&current)
            .into_iter()
            .filter_map(|mutant| {
                let normalized = revalidate(&mutant)?;
                let w = weight(&normalized);
                (w < size && sir::lower(&normalized).is_ok()).then_some((w, normalized))
            })
            .collect();
        viable.sort_by_key(|v| v.0);
        let mut improved = false;
        for (w, normalized) in viable {
            if still_fails(&normalized) {
                size = w;
                current = normalized;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Shrink metric, compared lexicographically: heap-intrinsic count
/// (`alloc`/`free`/`format` call sites) first, rendered length second,
/// then the summed magnitude of all literals.
///
/// Heap intrinsics dominate so a use-after-free reproducer reduces to a
/// single alloc/free pair plus one access — without the first component
/// the descent prefers a shorter double-free (`free; free;` renders
/// shorter than a `buf_set` access but carries one more heap op).
/// Halving `buf[8]` to `buf[4]` leaves the first two components
/// unchanged but strictly decreases the third, so literal shrinks always
/// make progress and the descent still terminates (all components are
/// non-negative and one strictly drops on every accepted step).
fn weight(p: &Program) -> (usize, usize, u128) {
    let mut magnitude: u128 = 0;
    visit_literals(p, &mut |site| {
        magnitude = magnitude.saturating_add(match site {
            LitSite::Int(v) => v.unsigned_abs() as u128,
            LitSite::Str(len) => len as u128,
            LitSite::BufCap(cap) => cap as u128,
        });
    });
    (count_heap_intrinsics(p), print_program(p).len(), magnitude)
}

/// Counts `alloc`/`free`/`format` call sites across the program.
fn count_heap_intrinsics(p: &Program) -> usize {
    fn expr(e: &Expr, n: &mut usize) {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                if matches!(callee.as_str(), "alloc" | "free" | "format") {
                    *n += 1;
                }
                for a in args {
                    expr(a, n);
                }
            }
            ExprKind::Bin { lhs, rhs, .. } => {
                expr(lhs, n);
                expr(rhs, n);
            }
            ExprKind::Un { operand, .. } => expr(operand, n),
            _ => {}
        }
    }
    fn block(b: &Block, n: &mut usize) {
        for s in &b.stmts {
            match &s.kind {
                StmtKind::Let { init: Some(e), .. } => expr(e, n),
                StmtKind::Let { init: None, .. } => {}
                StmtKind::Assign { value, .. } => expr(value, n),
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    expr(cond, n);
                    block(then_blk, n);
                    if let Some(e) = else_blk {
                        block(e, n);
                    }
                }
                StmtKind::While { cond, body } => {
                    expr(cond, n);
                    block(body, n);
                }
                StmtKind::Return(Some(e)) | StmtKind::Assert(e) | StmtKind::Expr(e) => expr(e, n),
                _ => {}
            }
        }
    }
    let mut n = 0;
    for g in &p.globals {
        if let Some(e) = &g.init {
            expr(e, &mut n);
        }
    }
    for f in &p.functions {
        block(&f.body, &mut n);
    }
    n
}

/// Pretty-print + reparse: validates the mutant (the parser type-checks)
/// and normalises spans and the embedded source text.
fn revalidate(p: &Program) -> Option<Program> {
    parse_program(&print_program(p)).ok()
}

/// All single-step mutations of `p`, cheapest-win first.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // Drop a whole function (never `main`).
    for i in 0..p.functions.len() {
        if p.functions[i].name != "main" {
            let mut q = p.clone();
            q.functions.remove(i);
            out.push(q);
        }
    }
    // Drop a global.
    for i in 0..p.globals.len() {
        let mut q = p.clone();
        q.globals.remove(i);
        out.push(q);
    }
    // Drop statement #i (pre-order across all functions).
    let n = count_stmts(p);
    for i in 0..n {
        out.push(rewrite_stmt(p, i, &|_| Some(Vec::new())));
    }
    // Flatten `if` #i into its then-branch; drop `else` branches.
    for i in 0..n {
        out.push(rewrite_stmt(p, i, &|s| match &s.kind {
            StmtKind::If { then_blk, .. } => Some(then_blk.stmts.clone()),
            _ => None,
        }));
        out.push(rewrite_stmt(p, i, &|s| match &s.kind {
            StmtKind::If {
                cond,
                then_blk,
                else_blk: Some(_),
            } => Some(vec![Stmt {
                kind: StmtKind::If {
                    cond: cond.clone(),
                    then_blk: then_blk.clone(),
                    else_blk: None,
                },
                span: s.span,
            }]),
            _ => None,
        }));
    }
    // Halve literal #i (ints toward 0, strings toward "", buffer and
    // parameter-free capacities toward 1).
    let m = count_literals(p);
    for i in 0..m {
        out.push(rewrite_literal(p, i));
    }
    out
}

fn count_stmts(p: &Program) -> usize {
    fn block(b: &Block) -> usize {
        b.stmts.iter().map(stmt).sum()
    }
    fn stmt(s: &Stmt) -> usize {
        1 + match &s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => block(then_blk) + else_blk.as_ref().map_or(0, block),
            StmtKind::While { body, .. } => block(body),
            _ => 0,
        }
    }
    p.functions.iter().map(|f| block(&f.body)).sum()
}

/// Replaces pre-order statement `target` with `f`'s output (`None`
/// leaves it untouched). Returns the rewritten program either way.
fn rewrite_stmt(p: &Program, target: usize, f: &dyn Fn(&Stmt) -> Option<Vec<Stmt>>) -> Program {
    fn block(
        b: &Block,
        counter: &mut usize,
        target: usize,
        f: &dyn Fn(&Stmt) -> Option<Vec<Stmt>>,
    ) -> Block {
        let mut stmts = Vec::new();
        for s in &b.stmts {
            let idx = *counter;
            *counter += 1;
            if idx == target {
                if let Some(repl) = f(s) {
                    stmts.extend(repl);
                    // Children of a replaced statement are gone; keep the
                    // counter consistent by skipping their indices.
                    *counter += nested(s);
                    continue;
                }
            }
            let kind = match &s.kind {
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => StmtKind::If {
                    cond: cond.clone(),
                    then_blk: block(then_blk, counter, target, f),
                    else_blk: else_blk.as_ref().map(|e| block(e, counter, target, f)),
                },
                StmtKind::While { cond, body } => StmtKind::While {
                    cond: cond.clone(),
                    body: block(body, counter, target, f),
                },
                other => other.clone(),
            };
            stmts.push(Stmt { kind, span: s.span });
        }
        Block { stmts }
    }
    fn nested(s: &Stmt) -> usize {
        fn block(b: &Block) -> usize {
            b.stmts.iter().map(|s| 1 + nested(s)).sum()
        }
        match &s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => block(then_blk) + else_blk.as_ref().map_or(0, block),
            StmtKind::While { body, .. } => block(body),
            _ => 0,
        }
    }
    let mut counter = 0;
    let functions = p
        .functions
        .iter()
        .map(|func| {
            let mut fnc = func.clone();
            fnc.body = block(&func.body, &mut counter, target, f);
            fnc
        })
        .collect();
    Program {
        globals: p.globals.clone(),
        functions,
        source: String::new(),
    }
}

/// Counts shrinkable literal sites: ints with |v| ≥ 2, non-empty string
/// literals that are not builtin name arguments, buffer capacities ≥ 2.
fn count_literals(p: &Program) -> usize {
    let mut n = 0;
    visit_literals(p, &mut |_| n += 1);
    n
}

/// A shrinkable literal site and its magnitude. [`rewrite_literal`]
/// re-walks the same shape in the same order to apply a mutation.
enum LitSite {
    Int(i64),
    Str(usize),
    BufCap(u32),
}

fn visit_literals(p: &Program, visit: &mut dyn FnMut(LitSite)) {
    fn expr(e: &Expr, visit: &mut dyn FnMut(LitSite)) {
        match &e.kind {
            ExprKind::Int(v) if v.abs() >= 2 => visit(LitSite::Int(*v)),
            ExprKind::Bin { lhs, rhs, .. } => {
                expr(lhs, visit);
                expr(rhs, visit);
            }
            ExprKind::Un { operand, .. } => expr(operand, visit),
            ExprKind::Call { callee, args } => {
                // Skip the name argument of input builtins: shrinking an
                // input's identity makes reproducers confusing and can
                // collide two inputs onto one name.
                let skip_name = matches!(callee.as_str(), "input_int" | "input_str");
                for (i, a) in args.iter().enumerate() {
                    if skip_name && i == 0 {
                        continue;
                    }
                    expr(a, visit);
                }
            }
            ExprKind::Str(s) if !s.is_empty() => visit(LitSite::Str(s.len())),
            _ => {}
        }
    }
    fn block(b: &Block, visit: &mut dyn FnMut(LitSite)) {
        for s in &b.stmts {
            match &s.kind {
                StmtKind::Let { ty, init, .. } => {
                    if let Type::Buf(Some(cap)) = ty {
                        if *cap >= 2 {
                            visit(LitSite::BufCap(*cap));
                        }
                    }
                    if let Some(e) = init {
                        expr(e, visit);
                    }
                }
                StmtKind::Assign { value, .. } => expr(value, visit),
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    expr(cond, visit);
                    block(then_blk, visit);
                    if let Some(e) = else_blk {
                        block(e, visit);
                    }
                }
                StmtKind::While { cond, body } => {
                    expr(cond, visit);
                    block(body, visit);
                }
                StmtKind::Return(Some(e)) | StmtKind::Assert(e) | StmtKind::Expr(e) => {
                    expr(e, visit)
                }
                _ => {}
            }
        }
    }
    for g in &p.globals {
        if let Some(e) = &g.init {
            expr(e, visit);
        }
    }
    for f in &p.functions {
        block(&f.body, visit);
    }
}

/// Halves literal site `target` (same pre-order as [`visit_literals`]).
fn rewrite_literal(p: &Program, target: usize) -> Program {
    // Mirror the visit order while rebuilding. A counter cell tracks the
    // site index; the closure-based visitor cannot rebuild, so walk the
    // same shape imperatively.
    struct Ctx {
        counter: usize,
        target: usize,
    }
    impl Ctx {
        fn hit(&mut self) -> bool {
            let hit = self.counter == self.target;
            self.counter += 1;
            hit
        }
    }
    fn expr(e: &Expr, cx: &mut Ctx) -> Expr {
        let kind = match &e.kind {
            ExprKind::Int(v) if v.abs() >= 2 => {
                if cx.hit() {
                    ExprKind::Int(v / 2)
                } else {
                    ExprKind::Int(*v)
                }
            }
            ExprKind::Bin { op, lhs, rhs } => ExprKind::Bin {
                op: *op,
                lhs: Box::new(expr(lhs, cx)),
                rhs: Box::new(expr(rhs, cx)),
            },
            ExprKind::Un { op, operand } => ExprKind::Un {
                op: *op,
                operand: Box::new(expr(operand, cx)),
            },
            ExprKind::Call { callee, args } => {
                let skip_name = matches!(callee.as_str(), "input_int" | "input_str");
                let args = args
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        if skip_name && i == 0 {
                            a.clone()
                        } else {
                            expr(a, cx)
                        }
                    })
                    .collect();
                ExprKind::Call {
                    callee: callee.clone(),
                    args,
                }
            }
            ExprKind::Str(s) if !s.is_empty() => {
                if cx.hit() {
                    ExprKind::Str(s[..s.len() / 2].to_string())
                } else {
                    ExprKind::Str(s.clone())
                }
            }
            other => other.clone(),
        };
        Expr { kind, span: e.span }
    }
    fn block(b: &Block, cx: &mut Ctx) -> Block {
        let stmts = b
            .stmts
            .iter()
            .map(|s| {
                let kind = match &s.kind {
                    StmtKind::Let { name, ty, init } => {
                        let ty = match ty {
                            Type::Buf(Some(cap)) if *cap >= 2 => {
                                if cx.hit() {
                                    Type::Buf(Some(cap / 2))
                                } else {
                                    Type::Buf(Some(*cap))
                                }
                            }
                            other => *other,
                        };
                        StmtKind::Let {
                            name: name.clone(),
                            ty,
                            init: init.as_ref().map(|e| expr(e, cx)),
                        }
                    }
                    StmtKind::Assign { name, value } => StmtKind::Assign {
                        name: name.clone(),
                        value: expr(value, cx),
                    },
                    StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    } => StmtKind::If {
                        cond: expr(cond, cx),
                        then_blk: block(then_blk, cx),
                        else_blk: else_blk.as_ref().map(|e| block(e, cx)),
                    },
                    StmtKind::While { cond, body } => StmtKind::While {
                        cond: expr(cond, cx),
                        body: block(body, cx),
                    },
                    StmtKind::Return(v) => StmtKind::Return(v.as_ref().map(|e| expr(e, cx))),
                    StmtKind::Assert(e) => StmtKind::Assert(expr(e, cx)),
                    StmtKind::Expr(e) => StmtKind::Expr(expr(e, cx)),
                    other => other.clone(),
                };
                Stmt { kind, span: s.span }
            })
            .collect();
        Block { stmts }
    }
    let mut cx = Ctx { counter: 0, target };
    let globals = p
        .globals
        .iter()
        .map(|g| {
            let mut g2 = g.clone();
            g2.init = g.init.as_ref().map(|e| expr(e, &mut cx));
            g2
        })
        .collect();
    let functions = p
        .functions
        .iter()
        .map(|f| {
            let mut f2 = f.clone();
            f2.body = block(&f.body, &mut cx);
            f2
        })
        .collect();
    Program {
        globals,
        functions,
        source: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_minimal_assert_reproducer() {
        // Property: "the program contains an assert somewhere". The
        // shrinker must strip everything else.
        let src = r#"
            global g0: int = 0;
            fn noise(x: int) -> int { return x * 3 + 1; }
            fn main() {
                let a: int = input_int("a");
                let w: int = 0;
                while (w < 4) { w = w + 1; }
                print(noise(a));
                if (a > 2) { assert(a * 3 < 21); }
            }
        "#;
        let p = parse_program(src).unwrap();
        let mut has_assert = |q: &Program| print_program(q).contains("assert");
        let small = shrink(&p, &mut has_assert);
        let rendered = print_program(&small);
        assert!(rendered.contains("assert"), "{rendered}");
        assert!(!rendered.contains("noise"), "{rendered}");
        assert!(!rendered.contains("while"), "{rendered}");
        assert!(!rendered.contains("global"), "{rendered}");
        assert!(
            rendered.len() < print_program(&p).len() / 2,
            "not much smaller: {rendered}"
        );
    }

    #[test]
    fn shrinking_preserves_well_typedness() {
        let src = r#"
            fn fill(s: str) {
                let b: buf[6];
                let i: int = 0;
                while (char_at(s, i) != 0) { buf_set(b, i, char_at(s, i)); i = i + 1; }
            }
            fn main() { let s: str = input_str("s", 10); fill(s); }
        "#;
        let p = parse_program(src).unwrap();
        let mut uses_buf = |q: &Program| print_program(q).contains("buf_set");
        let small = shrink(&p, &mut uses_buf);
        // The result must reparse (shrink guarantees it, but verify).
        parse_program(&print_program(&small)).unwrap();
        assert!(print_program(&small).contains("buf_set"));
    }

    #[test]
    fn uaf_reproducers_shrink_to_one_alloc_free_pair() {
        // Three alloc/free pairs of heap noise around the real bug; the
        // heap-dominant metric must strip the reproducer down to exactly
        // one alloc, one free, and the faulting access — not a shorter
        // double-free.
        let src = r#"
            fn main() {
                let a: int = input_int("a");
                let h1: buf = alloc(6);
                buf_set(h1, 0, 1);
                free(h1);
                let h2: buf = alloc(2);
                buf_set(h2, 0, 3);
                free(h2);
                let h0: buf = alloc(4);
                if (a > 2) { free(h0); }
                buf_set(h0, 1, 2);
                free(h0);
            }
        "#;
        let p = parse_program(src).unwrap();
        let mut still_uaf = |q: &Program| {
            let Ok(module) = sir::lower(q) else {
                return false;
            };
            let report = symex::Engine::new(&module, crate::oracles::budget()).run();
            matches!(
                report.outcome.found().map(|f| f.fault.kind),
                Some(concrete::FaultKind::UseAfterFree)
            )
        };
        let small = shrink(&p, &mut still_uaf);
        let rendered = print_program(&small);
        assert!(still_uaf(&small), "shrunk program no longer faults");
        assert_eq!(rendered.matches("alloc(").count(), 1, "{rendered}");
        assert_eq!(rendered.matches("free(").count(), 1, "{rendered}");
    }

    #[test]
    fn literal_shrinking_halves_capacities() {
        let src = r#"
            fn main() {
                let b: buf[8];
                buf_set(b, 0, 65);
            }
        "#;
        let p = parse_program(src).unwrap();
        let mut still = |q: &Program| print_program(q).contains("buf_set");
        let small = shrink(&p, &mut still);
        let rendered = print_program(&small);
        assert!(rendered.contains("buf[1]"), "{rendered}");
    }
}
