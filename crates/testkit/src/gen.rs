//! Seeded minic program generator.
//!
//! Every program is derived deterministically from a single `u64` seed:
//! the same seed always yields the same source, so any oracle failure
//! is reproducible from the seed alone (`statsym-testkit --seeds N..M`).
//!
//! The grammar is deliberately conservative so every emitted program
//! passes `minic::check` by construction (validated on every call
//! anyway — a parse or type error here is a generator bug and panics):
//!
//! * a fixed input alphabet — `a`/`b` int inputs, `s` a string input —
//!   read at the top of `main` in a fixed order;
//! * optional fault-free *noise*: an `int` global, a pure arithmetic
//!   helper, constant-folded lets, bounded counting loops (noise never
//!   divides, asserts, recurses, or touches buffers, so it cannot
//!   introduce a second fault class);
//! * exactly one **fault template**, chosen from the five
//!   [`concrete::FaultKind`] classes and guarded by an input predicate,
//!   planted either in its own function (`vuln`) or inline in `main`.
//!
//! The guard predicate gives the statistical pipeline something to
//! find: random inputs split into correct and faulty populations, and
//! the threshold separating them is exactly the paper's Eq. 1 shape.

use concrete::{FaultKind, InputMap, InputValue};
use minic::Program;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// The nine fault classes the generator can plant, mirroring
/// [`concrete::FaultKind`] without payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// `buf_set` past capacity in an unchecked copy loop.
    BufferOverflow,
    /// `char_at` past the NUL terminator with an attacker index.
    StringOob,
    /// A violable arithmetic assertion.
    Assert,
    /// Division by an input-controlled zero.
    DivByZero,
    /// Unbounded self-recursion behind an input guard.
    Recursion,
    /// Input-scaled `alloc` request escaping `[0, MAX_ALLOC]`.
    AllocOverflow,
    /// `<=` loop bound walking one past a dynamic buffer's capacity.
    OffByOne,
    /// Attacker string reaching the `format(..)` sink with a `%`.
    FormatString,
    /// Access of a heap buffer after an input-guarded `free`.
    UseAfterFree,
}

impl FaultClass {
    /// All classes, in the order the seed selects from.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::BufferOverflow,
        FaultClass::StringOob,
        FaultClass::Assert,
        FaultClass::DivByZero,
        FaultClass::Recursion,
        FaultClass::AllocOverflow,
        FaultClass::OffByOne,
        FaultClass::FormatString,
        FaultClass::UseAfterFree,
    ];

    /// The class of a concrete fault.
    pub fn of_kind(kind: &FaultKind) -> FaultClass {
        match kind {
            FaultKind::BufferOverflow { .. } => FaultClass::BufferOverflow,
            FaultKind::StringOob { .. } => FaultClass::StringOob,
            FaultKind::AssertFailed => FaultClass::Assert,
            FaultKind::DivByZero => FaultClass::DivByZero,
            FaultKind::StackOverflow => FaultClass::Recursion,
            FaultKind::AllocOverflow { .. } => FaultClass::AllocOverflow,
            FaultKind::OffByOne { .. } => FaultClass::OffByOne,
            FaultKind::FormatString { .. } => FaultClass::FormatString,
            FaultKind::UseAfterFree => FaultClass::UseAfterFree,
        }
    }

    /// Short stable label for messages and `--class` filters.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::BufferOverflow => "overflow",
            FaultClass::StringOob => "string-oob",
            FaultClass::Assert => "assert",
            FaultClass::DivByZero => "div0",
            FaultClass::Recursion => "stack",
            FaultClass::AllocOverflow => "alloc-overflow",
            FaultClass::OffByOne => "off-by-one",
            FaultClass::FormatString => "format-string",
            FaultClass::UseAfterFree => "uaf",
        }
    }

    /// Parses a [`FaultClass::label`] back to its class (for CLI
    /// `--class` filters). Returns `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.label() == label)
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A generated program plus the metadata oracles need to drive it.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The seed that produced this program.
    pub seed: u64,
    /// The planted fault class.
    pub class: FaultClass,
    /// Rendered source.
    pub source: String,
    /// Parsed and type-checked program.
    pub program: Program,
    /// Capacity of the `s` string input, when the program reads one.
    pub str_cap: Option<u32>,
    /// Whether `a` / `b` int inputs are read.
    pub reads_a: bool,
    /// Whether the `b` int input is read.
    pub reads_b: bool,
}

/// Derives a program from `seed`. Deterministic; panics only on a
/// generator bug (emitted source failing `minic::check`).
pub fn generate(seed: u64) -> Generated {
    let mut rng = StdRng::seed_from_u64(seed);
    let class = FaultClass::ALL[rng.random_range(0..FaultClass::ALL.len())];
    let guard = rng.random_range(1..=3i64);
    let has_global = rng.random_bool(0.4);
    let has_helper = rng.random_bool(0.5);
    let in_function = rng.random_bool(0.7);

    let mut fns = String::new();
    let mut header = String::new();
    if has_global {
        header.push_str("global g0: int = 0;\n");
    }
    let helper_m = rng.random_range(2..=4i64);
    let helper_c = rng.random_range(0..=9i64);
    if has_helper {
        let _ = writeln!(
            fns,
            "fn noise(x: int) -> int {{ return x * {helper_m} + {helper_c}; }}"
        );
    }

    let mut str_cap = None;
    let mut reads_a = false;
    let mut reads_b = false;
    // The statement in main that reaches the fault template.
    let mut fault_stmts: Vec<String> = Vec::new();

    match class {
        FaultClass::BufferOverflow => {
            let cap = rng.random_range(3..=6u32);
            let scap = cap + rng.random_range(2..=4u32);
            str_cap = Some(scap);
            let terminator = rng.random_bool(0.5);
            let term = if terminator {
                "    buf_set(b0, i0, 0);\n"
            } else {
                ""
            };
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(s1: str) {{\n\
                     \x20   let b0: buf[{cap}];\n\
                     \x20   let i0: int = 0;\n\
                     \x20   while (char_at(s1, i0) != 0) {{\n\
                     \x20       buf_set(b0, i0, char_at(s1, i0));\n\
                     \x20       i0 = i0 + 1;\n\
                     \x20   }}\n{term}}}\n"
                );
                fault_stmts.push("vuln(s);".into());
            } else {
                fault_stmts.push(format!("let b0: buf[{cap}];"));
                fault_stmts.push("let i0: int = 0;".into());
                fault_stmts.push(
                    "while (char_at(s, i0) != 0) { buf_set(b0, i0, char_at(s, i0)); i0 = i0 + 1; }"
                        .into(),
                );
                if terminator {
                    fault_stmts.push("buf_set(b0, i0, 0);".into());
                }
            }
        }
        FaultClass::StringOob => {
            let scap = rng.random_range(4..=8u32);
            str_cap = Some(scap);
            reads_a = true;
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(s1: str, n0: int) {{\n\
                     \x20   if (n0 > {guard}) {{ print(char_at(s1, n0)); }}\n}}\n"
                );
                fault_stmts.push("vuln(s, a);".into());
            } else {
                fault_stmts.push(format!("if (a > {guard}) {{ print(char_at(s, a)); }}"));
            }
        }
        FaultClass::Assert => {
            reads_a = true;
            let m = rng.random_range(2..=4i64);
            let t = m * (guard + 4);
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(n0: int) {{\n\
                     \x20   if (n0 > {guard}) {{ assert(n0 * {m} < {t}); }}\n}}\n"
                );
                fault_stmts.push("vuln(a);".into());
            } else {
                fault_stmts.push(format!("if (a > {guard}) {{ assert(a * {m} < {t}); }}"));
            }
        }
        FaultClass::DivByZero => {
            reads_a = true;
            reads_b = true;
            let k = rng.random_range(2..=9i64);
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(n0: int, d0: int) -> int {{\n\
                     \x20   if (n0 > {guard}) {{ return n0 / (d0 - {k}); }}\n\
                     \x20   return 0;\n}}\n"
                );
                fault_stmts.push("print(vuln(a, b));".into());
            } else {
                fault_stmts.push("let q0: int = 0;".into());
                fault_stmts.push(format!("if (a > {guard}) {{ q0 = a / (b - {k}); }}"));
                fault_stmts.push("print(q0);".into());
            }
        }
        FaultClass::Recursion => {
            reads_a = true;
            let _ = writeln!(fns, "fn spin(m0: int) -> int {{ return spin(m0 + 1); }}");
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(n0: int) {{\n\
                     \x20   if (n0 > {guard}) {{ print(spin(n0)); }}\n}}\n"
                );
                fault_stmts.push("vuln(a);".into());
            } else {
                fault_stmts.push(format!("if (a > {guard}) {{ print(spin(a)); }}"));
            }
        }
        FaultClass::AllocOverflow => {
            // `a * k` stays within MAX_ALLOC for small guarded inputs and
            // escapes it for larger ones: the overflow-feeding-malloc shape.
            reads_a = true;
            let k = rng.random_range(512..=700i64);
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(n0: int) {{\n\
                     \x20   if (n0 > {guard}) {{\n\
                     \x20       let h0: buf = alloc(n0 * {k});\n\
                     \x20       buf_set(h0, 0, 1);\n\
                     \x20       free(h0);\n\
                     \x20   }}\n}}\n"
                );
                fault_stmts.push("vuln(a);".into());
            } else {
                fault_stmts.push(format!(
                    "if (a > {guard}) {{ let h0: buf = alloc(a * {k}); buf_set(h0, 0, 1); free(h0); }}"
                ));
            }
        }
        FaultClass::OffByOne => {
            reads_a = true;
            let cap = rng.random_range(3..=6u32);
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(n0: int) {{\n\
                     \x20   let h0: buf = alloc({cap});\n\
                     \x20   if (n0 > {guard}) {{\n\
                     \x20       let i0: int = 0;\n\
                     \x20       while (i0 <= buf_cap(h0)) {{\n\
                     \x20           buf_set(h0, i0, 7);\n\
                     \x20           i0 = i0 + 1;\n\
                     \x20       }}\n\
                     \x20   }}\n\
                     \x20   free(h0);\n}}\n"
                );
                fault_stmts.push("vuln(a);".into());
            } else {
                fault_stmts.push(format!("let h0: buf = alloc({cap});"));
                fault_stmts.push(format!(
                    "if (a > {guard}) {{ let i0: int = 0; while (i0 <= buf_cap(h0)) {{ buf_set(h0, i0, 7); i0 = i0 + 1; }} }}"
                ));
                fault_stmts.push("free(h0);".into());
            }
        }
        FaultClass::FormatString => {
            let scap = rng.random_range(4..=8u32);
            str_cap = Some(scap);
            reads_a = true;
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(s1: str, n0: int) {{\n\
                     \x20   if (n0 > {guard}) {{ format(s1); }}\n}}\n"
                );
                fault_stmts.push("vuln(s, a);".into());
            } else {
                fault_stmts.push(format!("if (a > {guard}) {{ format(s); }}"));
            }
        }
        FaultClass::UseAfterFree => {
            reads_a = true;
            let cap = rng.random_range(2..=6u32);
            if in_function {
                let _ = write!(
                    fns,
                    "fn vuln(n0: int) {{\n\
                     \x20   let h0: buf = alloc({cap});\n\
                     \x20   buf_set(h0, 0, 1);\n\
                     \x20   if (n0 > {guard}) {{ free(h0); }}\n\
                     \x20   buf_set(h0, 1, 2);\n\
                     \x20   free(h0);\n}}\n"
                );
                fault_stmts.push("vuln(a);".into());
            } else {
                fault_stmts.push(format!("let h0: buf = alloc({cap});"));
                fault_stmts.push("buf_set(h0, 0, 1);".into());
                fault_stmts.push(format!("if (a > {guard}) {{ free(h0); }}"));
                fault_stmts.push("buf_set(h0, 1, 2);".into());
                fault_stmts.push("free(h0);".into());
            }
        }
    }

    // Main: input reads, fault-free noise, then the fault template.
    let mut main_body: Vec<String> = Vec::new();
    if let Some(scap) = str_cap {
        main_body.push(format!("let s: str = input_str(\"s\", {scap});"));
    }
    if reads_a {
        main_body.push("let a: int = input_int(\"a\");".into());
    }
    if reads_b {
        main_body.push("let b: int = input_int(\"b\");".into());
    }
    for i in 0..rng.random_range(0..=2usize) {
        match rng.random_range(0..4u32) {
            0 => {
                let c1 = rng.random_range(1..=9i64);
                let c2 = rng.random_range(1..=9i64);
                main_body.push(format!("let z{i}: int = {c1} * {c2};"));
                main_body.push(format!("print(z{i});"));
            }
            1 => {
                let c = rng.random_range(1..=4i64);
                main_body.push(format!("let w{i}: int = 0;"));
                main_body.push(format!("while (w{i} < {c}) {{ w{i} = w{i} + 1; }}"));
            }
            2 if has_global => main_body.push("g0 = g0 + 1;".into()),
            _ if has_helper => {
                let arg = if reads_a {
                    "a".to_string()
                } else {
                    rng.random_range(0..=9i64).to_string()
                };
                main_body.push(format!("print(noise({arg}));"));
            }
            _ => {
                let c = rng.random_range(0..=9i64);
                main_body.push(format!("let y{i}: int = {c};"));
                main_body.push(format!("print(y{i});"));
            }
        }
    }
    main_body.extend(fault_stmts);

    let mut source = header;
    source.push_str(&fns);
    source.push_str("fn main() {\n");
    for stmt in &main_body {
        let _ = writeln!(source, "    {stmt}");
    }
    source.push_str("}\n");

    let program = minic::parse_program(&source)
        .unwrap_or_else(|e| panic!("generator bug (seed {seed}): {e}\n{source}"));
    Generated {
        seed,
        class,
        source,
        program,
        str_cap,
        reads_a,
        reads_b,
    }
}

/// Samples a random input assignment for a generated program. Ranges
/// straddle every template's guard and fault thresholds so repeated
/// draws produce both correct and faulty runs.
pub fn sample_inputs(g: &Generated, rng: &mut StdRng) -> InputMap {
    let mut map = InputMap::new();
    if let Some(scap) = g.str_cap {
        let len = rng.random_range(0..=scap);
        // Format-string programs need `%` bytes in the attacker alphabet
        // for the faulty population to exist at all.
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                if g.class == FaultClass::FormatString && rng.random_bool(0.3) {
                    b'%'
                } else {
                    rng.random_range(b'a'..=b'z')
                }
            })
            .collect();
        map.insert("s".to_string(), InputValue::Str(bytes));
    }
    if g.reads_a {
        map.insert(
            "a".to_string(),
            InputValue::Int(rng.random_range(-6..=12i64)),
        );
    }
    if g.reads_b {
        map.insert(
            "b".to_string(),
            InputValue::Int(rng.random_range(-2..=12i64)),
        );
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_yields_a_well_typed_program() {
        for seed in 0..300 {
            let g = generate(seed);
            // parse_program already type-checked; lowering must work too.
            sir::lower(&g.program).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", g.source));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 99, 123_456] {
            assert_eq!(generate(seed).source, generate(seed).source);
        }
    }

    #[test]
    fn all_nine_classes_appear_in_a_small_seed_range() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..128 {
            seen.insert(generate(seed).class.label());
        }
        assert_eq!(seen.len(), FaultClass::ALL.len(), "{seen:?}");
    }

    #[test]
    fn labels_roundtrip_through_from_label() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_label(class.label()), Some(class));
        }
        assert_eq!(FaultClass::from_label("nope"), None);
    }

    #[test]
    fn every_class_admits_a_faulty_concrete_run() {
        // For each of the nine classes, some seed + sampled input must
        // trigger the planted fault with the matching class — the
        // generator's end of the replay-oracle contract.
        let mut faulted = std::collections::HashSet::new();
        'seeds: for seed in 0..200 {
            let g = generate(seed);
            if faulted.contains(&g.class) {
                continue;
            }
            let module = sir::lower(&g.program).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            for _ in 0..80 {
                let inputs = sample_inputs(&g, &mut rng);
                let run = concrete::run_logged(&module, &inputs, 1.0, 0).unwrap();
                if let Some(fault) = &run.log.fault {
                    let kind = fault.kind;
                    assert_eq!(
                        FaultClass::of_kind(&kind),
                        g.class,
                        "seed {seed} planted {:?} but faulted {kind:?}\n{}",
                        g.class,
                        g.source
                    );
                    faulted.insert(g.class);
                    continue 'seeds;
                }
            }
        }
        for class in FaultClass::ALL {
            assert!(faulted.contains(&class), "{class} never faulted");
        }
    }

    #[test]
    fn every_class_is_symbolically_detectable_and_model_replayable() {
        // The symbolic half of the exhaustiveness contract: for every
        // class, some generated program's exhaustive symbolic run finds
        // the planted class, and the solver model replays on the
        // concrete VM to the same class — a FaultKind variant cannot be
        // added without the engine, the VM, and the generator all
        // agreeing on it (the `of_kind` match above enforces the
        // compile-time half).
        let mut proven = std::collections::HashSet::new();
        for seed in 0..200 {
            let g = generate(seed);
            if proven.contains(&g.class) {
                continue;
            }
            let module = sir::lower(&g.program).unwrap();
            let report = symex::Engine::new(&module, crate::oracles::budget()).run();
            let Some(found) = report.outcome.found() else {
                continue;
            };
            assert_eq!(
                FaultClass::of_kind(&found.fault.kind),
                g.class,
                "seed {seed} planted {:?} but the engine found {:?}\n{}",
                g.class,
                found.fault.kind,
                g.source
            );
            let vm = concrete::Vm::new(&module, concrete::VmConfig::default());
            let run = vm
                .run(&found.inputs)
                .unwrap_or_else(|e| panic!("seed {seed}: VM rejected model inputs: {e}"));
            let fault = run
                .outcome
                .fault()
                .unwrap_or_else(|| panic!("seed {seed}: model inputs complete concretely"));
            assert_eq!(
                FaultClass::of_kind(&fault.kind),
                g.class,
                "seed {seed}: replay class diverged\n{}",
                g.source
            );
            proven.insert(g.class);
            if proven.len() == FaultClass::ALL.len() {
                break;
            }
        }
        for class in FaultClass::ALL {
            assert!(proven.contains(&class), "{class} never proven symbolically");
        }
    }

    #[test]
    fn sampled_inputs_cover_both_outcomes() {
        // Most seeds must admit both a correct and a faulty concrete run,
        // otherwise the pipeline has nothing to learn from.
        let mut both = 0;
        for seed in 0..40 {
            let g = generate(seed);
            let module = sir::lower(&g.program).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let mut correct = false;
            let mut faulty = false;
            for _ in 0..60 {
                let inputs = sample_inputs(&g, &mut rng);
                let run = concrete::run_logged(&module, &inputs, 1.0, 0).unwrap();
                if run.log.is_faulty() {
                    faulty = true;
                } else {
                    correct = true;
                }
            }
            if correct && faulty {
                both += 1;
            }
        }
        assert!(both >= 30, "only {both}/40 seeds admit both outcomes");
    }
}
