//! `statsym-testkit` — seed-range soak runner for the differential
//! oracles and chaos schedules.
//!
//! ```text
//! statsym-testkit [--seeds A..B] [--class LABEL] [--no-chaos] [--sabotage] [--verbose]
//!                 [--history <dir|file.jsonl>]
//! ```
//!
//! Exit codes: 0 all oracles held, 1 at least one violation (a shrunk
//! reproducer is printed per violation), 2 usage error.

use statsym_telemetry::manifest::{self, RunManifest};
use std::process::ExitCode;
use testkit::{run_seeds, FaultClass, RunnerConfig, RunnerReport};

const USAGE: &str =
    "usage: statsym-testkit [--seeds A..B] [--class LABEL] [--no-chaos] [--sabotage] [--verbose]
                       [--history <dir|file.jsonl>]

  --seeds A..B   seed range to soak, half-open (default 0..100)
  --class LABEL  only soak seeds planting the given fault class
                 (overflow, string-oob, assert, div0, stack,
                 alloc-overflow, off-by-one, format-string, uaf)
  --no-chaos     skip the fault-injection (chaos) oracle
  --sabotage     run a deliberately broken oracle to demonstrate the
                 shrink-and-report path (exits 1 by design)
  --verbose      log per-seed outcomes to stderr
  --history DIR  append a run manifest (source `testkit`) to the
                 history archive, so soak throughput and failure
                 counts are trend-gateable like any other run

Every failure prints its seed and a minimal shrunk reproducer;
`statsym-testkit --seeds N..N+1` replays seed N exactly.";

fn parse_range(arg: &str) -> Option<(u64, u64)> {
    let (a, b) = arg.split_once("..")?;
    let start: u64 = a.trim().parse().ok()?;
    let end: u64 = b.trim().parse().ok()?;
    (start < end).then_some((start, end))
}

fn parse_args(args: &[String]) -> Result<(RunnerConfig, Option<String>), String> {
    let mut config = RunnerConfig::default();
    let mut history = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a range like 0..500")?;
                let (start, end) = parse_range(v)
                    .ok_or_else(|| format!("bad seed range `{v}` (want A..B, A < B)"))?;
                config.start = start;
                config.end = end;
            }
            "--class" => {
                let v = it.next().ok_or("--class needs a fault-class label")?;
                config.class = Some(
                    FaultClass::from_label(v)
                        .ok_or_else(|| format!("unknown fault class `{v}`"))?,
                );
            }
            "--no-chaos" => config.chaos = false,
            "--sabotage" => config.sabotage = true,
            "--verbose" => config.verbose = true,
            "--history" => {
                let v = it
                    .next()
                    .ok_or("--history needs a directory or .jsonl path")?;
                history = Some(v.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((config, history))
}

/// A soak run's manifest, built directly from the runner report (a soak
/// has no trace to fold; its counters *are* the report).
fn soak_manifest(config: &RunnerConfig, report: &RunnerReport, rendered: &str) -> RunManifest {
    let class = config
        .class
        .map_or_else(|| "all".to_string(), |c| format!("{c:?}").to_lowercase());
    let mut m = RunManifest {
        source: "testkit".to_string(),
        run: format!("soak-{}..{}-{class}", config.start, config.end),
        git: manifest::git_rev(),
        seed: config.start,
        config: manifest::fnv64_hex(format!("{config:?}").as_bytes()),
        clock: "seeds".to_string(),
        ticks: report.seeds_run,
        winner_rank: 0,
        budget: "none".to_string(),
        trace: manifest::fnv64_hex(rendered.as_bytes()),
        ..RunManifest::default()
    };
    m.counters
        .insert("testkit.seeds_run".to_string(), report.seeds_run);
    m.counters
        .insert("testkit.passes".to_string(), report.passes);
    m.counters
        .insert("testkit.vacuous".to_string(), report.vacuous);
    m.counters
        .insert("testkit.failures".to_string(), report.failures.len() as u64);
    m
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, history) = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("statsym-testkit: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = run_seeds(&config);
    let rendered = format!("{report}");
    print!("{rendered}");
    if let Some(archive) = history {
        let m = soak_manifest(&config, &report, &rendered);
        match manifest::append_manifest(&archive, &m) {
            Ok(id) => eprintln!(
                "manifest {id} appended to {}",
                manifest::history_path(&archive).display()
            ),
            Err(e) => {
                eprintln!("statsym-testkit: cannot append manifest to {archive}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
