//! `statsym-testkit` — seed-range soak runner for the differential
//! oracles and chaos schedules.
//!
//! ```text
//! statsym-testkit [--seeds A..B] [--class LABEL] [--no-chaos] [--sabotage] [--verbose]
//! ```
//!
//! Exit codes: 0 all oracles held, 1 at least one violation (a shrunk
//! reproducer is printed per violation), 2 usage error.

use std::process::ExitCode;
use testkit::{run_seeds, FaultClass, RunnerConfig};

const USAGE: &str =
    "usage: statsym-testkit [--seeds A..B] [--class LABEL] [--no-chaos] [--sabotage] [--verbose]

  --seeds A..B   seed range to soak, half-open (default 0..100)
  --class LABEL  only soak seeds planting the given fault class
                 (overflow, string-oob, assert, div0, stack,
                 alloc-overflow, off-by-one, format-string, uaf)
  --no-chaos     skip the fault-injection (chaos) oracle
  --sabotage     run a deliberately broken oracle to demonstrate the
                 shrink-and-report path (exits 1 by design)
  --verbose      log per-seed outcomes to stderr

Every failure prints its seed and a minimal shrunk reproducer;
`statsym-testkit --seeds N..N+1` replays seed N exactly.";

fn parse_range(arg: &str) -> Option<(u64, u64)> {
    let (a, b) = arg.split_once("..")?;
    let start: u64 = a.trim().parse().ok()?;
    let end: u64 = b.trim().parse().ok()?;
    (start < end).then_some((start, end))
}

fn parse_args(args: &[String]) -> Result<RunnerConfig, String> {
    let mut config = RunnerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a range like 0..500")?;
                let (start, end) = parse_range(v)
                    .ok_or_else(|| format!("bad seed range `{v}` (want A..B, A < B)"))?;
                config.start = start;
                config.end = end;
            }
            "--class" => {
                let v = it.next().ok_or("--class needs a fault-class label")?;
                config.class = Some(
                    FaultClass::from_label(v)
                        .ok_or_else(|| format!("unknown fault class `{v}`"))?,
                );
            }
            "--no-chaos" => config.chaos = false,
            "--sabotage" => config.sabotage = true,
            "--verbose" => config.verbose = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("statsym-testkit: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = run_seeds(&config);
    print!("{report}");
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
