//! The four differential oracles (DESIGN.md §11).
//!
//! Each oracle takes a *program* and a *seed* (driving log minting and
//! randomized schedules) and returns pass, vacuous-skip, or a failure
//! message. Oracles operate on [`minic::Program`] rather than
//! [`crate::gen::Generated`] so the shrinker can re-run them unchanged
//! on mutated programs.
//!
//! | oracle | claim |
//! |---|---|
//! | replay | every solver model the engine reports crashes the VM with the same fault class at the same function |
//! | completeness | any fault exhaustive search finds on a candidate-covered path, guided search finds within the same budget (paper Fig. 5) |
//! | portfolio | portfolio execution at 2 and 4 workers reports byte-identical results to the sequential loop |
//! | cache | shared-verdict caches (off / 1 shard / 8 shards / pre-warmed) never change exploration, only solver work |

use crate::gen::FaultClass;
use concrete::{ExecutionLog, InputMap, InputValue, Vm, VmConfig};
use minic::ast::{Block, Expr, ExprKind, Program, Stmt, StmtKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sir::Module;
use solver::{QueryCache, SharedCache};
use statsym_core::pipeline::{CandidateAttempt, StatSym, StatSymConfig, StatSymReport};
use std::sync::Arc;
use symex::{
    outcome_label, Engine, EngineConfig, EngineReport, EngineStats, FoundVulnerability,
    SchedulerKind,
};

/// The four differential oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Solver-model → concrete-VM replay equivalence.
    Replay,
    /// Guided-vs-exhaustive completeness.
    Completeness,
    /// Portfolio-vs-sequential identity at 1/2/4 workers.
    Portfolio,
    /// Cache-on/off and shard-count metamorphic invariance.
    Cache,
}

impl Oracle {
    /// All oracles, in the order the runner executes them.
    pub const ALL: [Oracle; 4] = [
        Oracle::Replay,
        Oracle::Completeness,
        Oracle::Portfolio,
        Oracle::Cache,
    ];

    /// Stable label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Oracle::Replay => "replay",
            Oracle::Completeness => "completeness",
            Oracle::Portfolio => "portfolio",
            Oracle::Cache => "cache",
        }
    }
}

impl std::fmt::Display for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A pass, or a documented reason the oracle did not apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleOutcome {
    /// The property was exercised and held.
    Pass,
    /// The property was vacuous for this program (e.g. no fault is
    /// reachable, or the analysis produced no candidate paths).
    Vacuous(&'static str),
}

/// An oracle violation: which oracle, and what went wrong.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// The violated oracle.
    pub oracle: Oracle,
    /// Human-readable description of the divergence.
    pub message: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.message)
    }
}

/// The engine budget oracles run generated programs under: generous
/// for their size, deterministic (no wall-clock cutoff), and with a
/// call-depth cap small enough that recursion templates fault quickly.
pub fn budget() -> EngineConfig {
    EngineConfig {
        scheduler: SchedulerKind::Bfs,
        max_steps: 150_000,
        max_call_depth: 24,
        time_budget: None,
        ..EngineConfig::default()
    }
}

/// The pipeline configuration oracles use: the oracle [`budget`] with
/// the requested worker count.
pub fn statsym_config(workers: usize) -> StatSymConfig {
    StatSymConfig {
        engine: budget(),
        workers,
        ..StatSymConfig::default()
    }
}

/// Runs one oracle on a program.
pub fn check(oracle: Oracle, program: &Program, seed: u64) -> Result<OracleOutcome, OracleFailure> {
    let res = match oracle {
        Oracle::Replay => replay(program, seed),
        Oracle::Completeness => completeness(program, seed),
        Oracle::Portfolio => portfolio(program, seed),
        Oracle::Cache => cache_metamorphic(program),
    };
    res.map_err(|message| OracleFailure { oracle, message })
}

/// Runs all four oracles; returns the first failure.
pub fn check_all(program: &Program, seed: u64) -> Result<Vec<OracleOutcome>, OracleFailure> {
    Oracle::ALL
        .iter()
        .map(|&o| check(o, program, seed))
        .collect()
}

// ---------------------------------------------------------------------
// Input discovery and log minting
// ---------------------------------------------------------------------

/// The kind of a named program input, recovered from the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// `input_int(name)`.
    Int,
    /// `input_str(name, cap)`.
    Str {
        /// Declared capacity.
        cap: u32,
    },
}

/// Scans a program for `input_int` / `input_str` calls. Works on any
/// well-typed program (including shrunk mutants), so oracles never
/// depend on generator metadata.
pub fn input_spec(program: &Program) -> Vec<(String, InputKind)> {
    let mut spec: Vec<(String, InputKind)> = Vec::new();
    let mut add = |name: &str, kind: InputKind| {
        if !spec.iter().any(|(n, _)| n == name) {
            spec.push((name.to_string(), kind));
        }
    };
    fn walk_expr(e: &Expr, add: &mut dyn FnMut(&str, InputKind)) {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                if callee == "input_int" {
                    if let Some(ExprKind::Str(name)) = args.first().map(|a| &a.kind) {
                        add(name, InputKind::Int);
                    }
                } else if callee == "input_str" {
                    if let (Some(ExprKind::Str(name)), Some(ExprKind::Int(cap))) =
                        (args.first().map(|a| &a.kind), args.get(1).map(|a| &a.kind))
                    {
                        add(name, InputKind::Str { cap: *cap as u32 });
                    }
                }
                for a in args {
                    walk_expr(a, add);
                }
            }
            ExprKind::Bin { lhs, rhs, .. } => {
                walk_expr(lhs, add);
                walk_expr(rhs, add);
            }
            ExprKind::Un { operand, .. } => walk_expr(operand, add),
            _ => {}
        }
    }
    fn walk_block(b: &Block, add: &mut dyn FnMut(&str, InputKind)) {
        for s in &b.stmts {
            walk_stmt(s, add);
        }
    }
    fn walk_stmt(s: &Stmt, add: &mut dyn FnMut(&str, InputKind)) {
        match &s.kind {
            StmtKind::Let { init: Some(e), .. } => walk_expr(e, add),
            StmtKind::Let { init: None, .. } => {}
            StmtKind::Assign { value, .. } => walk_expr(value, add),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                walk_expr(cond, add);
                walk_block(then_blk, add);
                if let Some(e) = else_blk {
                    walk_block(e, add);
                }
            }
            StmtKind::While { cond, body } => {
                walk_expr(cond, add);
                walk_block(body, add);
            }
            StmtKind::Return(Some(e)) | StmtKind::Assert(e) | StmtKind::Expr(e) => {
                walk_expr(e, add)
            }
            _ => {}
        }
    }
    for f in &program.functions {
        walk_block(&f.body, &mut add);
    }
    spec
}

/// Samples a random assignment for an input spec.
fn sample_spec(spec: &[(String, InputKind)], rng: &mut StdRng) -> InputMap {
    let mut map = InputMap::new();
    for (name, kind) in spec {
        let v = match kind {
            InputKind::Int => InputValue::Int(rng.random_range(-6..=12i64)),
            InputKind::Str { cap } => {
                let len = rng.random_range(0..=*cap);
                InputValue::Str((0..len).map(|_| rng.random_range(b'a'..=b'z')).collect())
            }
        };
        map.insert(name.clone(), v);
    }
    map
}

/// A jittered neighbour of a known-faulty assignment: ints move by a
/// few units, strings grow or shrink by a couple of bytes. Produces
/// the correct/faulty populations clustered around the fault threshold
/// that the statistical stage needs, even for programs whose fault
/// region random sampling almost never hits.
fn jitter(base: &InputMap, rng: &mut StdRng) -> InputMap {
    let mut map = InputMap::new();
    for (name, value) in base {
        let v = match value {
            InputValue::Int(i) => InputValue::Int(i.wrapping_add(rng.random_range(-3..=3i64))),
            InputValue::Str(bytes) => {
                let delta = rng.random_range(-2..=2i64);
                let len = (bytes.len() as i64 + delta).max(0) as usize;
                let mut b = bytes.clone();
                while b.len() < len {
                    b.push(rng.random_range(b'a'..=b'z'));
                }
                b.truncate(len);
                InputValue::Str(b)
            }
        };
        map.insert(name.clone(), v);
    }
    map
}

/// Mints a log corpus for the statistical stages: random draws over the
/// input spec plus (when a known-faulty assignment is available)
/// jittered neighbours of it, until both populations are represented.
pub fn mint_logs(
    module: &Module,
    spec: &[(String, InputKind)],
    seed: u64,
    known_faulty: Option<&InputMap>,
) -> Vec<ExecutionLog> {
    const WANT: usize = 12;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xf00d);
    let mut logs = Vec::new();
    let (mut n_correct, mut n_faulty) = (0usize, 0usize);
    let mut push = |log: ExecutionLog, n_correct: &mut usize, n_faulty: &mut usize| {
        if log.is_faulty() {
            if *n_faulty < WANT {
                *n_faulty += 1;
                logs.push(log);
            }
        } else if *n_correct < WANT {
            *n_correct += 1;
            logs.push(log);
        }
    };
    if let Some(inputs) = known_faulty {
        if let Ok(run) = concrete::run_logged(module, inputs, 1.0, seed) {
            push(run.log, &mut n_correct, &mut n_faulty);
        }
    }
    for attempt in 0..600u64 {
        if n_correct >= WANT && n_faulty >= WANT {
            break;
        }
        let inputs = match known_faulty {
            Some(base) if attempt % 2 == 0 => jitter(base, &mut rng),
            _ => sample_spec(spec, &mut rng),
        };
        if let Ok(run) = concrete::run_logged(module, &inputs, 1.0, seed ^ (attempt + 1)) {
            push(run.log, &mut n_correct, &mut n_faulty);
        }
    }
    logs
}

// ---------------------------------------------------------------------
// Report comparison
// ---------------------------------------------------------------------

/// Field-wise equality of two found vulnerabilities.
pub fn compare_found(a: &FoundVulnerability, b: &FoundVulnerability) -> Result<(), String> {
    if a.fault != b.fault {
        return Err(format!("fault mismatch: {:?} vs {:?}", a.fault, b.fault));
    }
    if a.inputs != b.inputs {
        return Err(format!("input mismatch: {:?} vs {:?}", a.inputs, b.inputs));
    }
    if a.trace != b.trace {
        return Err(format!(
            "trace mismatch ({} vs {} events)",
            a.trace.len(),
            b.trace.len()
        ));
    }
    if a.rendered_constraints != b.rendered_constraints {
        return Err("constraint mismatch".to_string());
    }
    if a.depth != b.depth {
        return Err(format!("depth mismatch: {} vs {}", a.depth, b.depth));
    }
    Ok(())
}

/// Equality of the exploration-visible counters: everything the paths
/// taken determine. Wall times and solver *work* counters (search
/// nodes, cache traffic, peak memory) legitimately differ across cache
/// configurations and scheduling, so they are excluded.
pub fn compare_stats(a: &EngineStats, b: &EngineStats, label: &str) -> Result<(), String> {
    let fields: [(&str, u64, u64); 10] = [
        ("steps", a.exec.steps, b.exec.steps),
        ("paths_completed", a.paths_completed, b.paths_completed),
        ("paths_explored", a.paths_explored, b.paths_explored),
        ("states_created", a.states_created, b.states_created),
        ("left_suspended", a.left_suspended, b.left_suspended),
        (
            "peak_live_states",
            a.peak_live_states as u64,
            b.peak_live_states as u64,
        ),
        ("solver.queries", a.solver.queries, b.solver.queries),
        ("solver.sat", a.solver.sat, b.solver.sat),
        ("solver.unsat", a.solver.unsat, b.solver.unsat),
        ("solver.unknown", a.solver.unknown, b.solver.unknown),
    ];
    for (name, x, y) in fields {
        if x != y {
            return Err(format!("{label}: {name} diverged: {x} vs {y}"));
        }
    }
    if a.exec != b.exec {
        return Err(format!("{label}: executor counters diverged"));
    }
    Ok(())
}

/// Equality of two whole engine reports (outcome + exploration stats).
pub fn compare_engine_reports(
    a: &EngineReport,
    b: &EngineReport,
    label: &str,
) -> Result<(), String> {
    if outcome_label(&a.outcome) != outcome_label(&b.outcome) {
        return Err(format!(
            "{label}: outcome diverged: {} vs {}",
            outcome_label(&a.outcome),
            outcome_label(&b.outcome)
        ));
    }
    if let (Some(x), Some(y)) = (a.outcome.found(), b.outcome.found()) {
        compare_found(x, y).map_err(|e| format!("{label}: {e}"))?;
    }
    compare_stats(&a.stats, &b.stats, label)
}

/// Equality of per-candidate attempt lists (sequential vs portfolio).
pub fn compare_attempts(
    seq: &[CandidateAttempt],
    par: &[CandidateAttempt],
    label: &str,
) -> Result<(), String> {
    if seq.len() != par.len() {
        return Err(format!(
            "{label}: attempt count diverged: {} vs {}",
            seq.len(),
            par.len()
        ));
    }
    for (s, p) in seq.iter().zip(par) {
        let at = format!("{label}, attempt {}", s.index);
        if s.index != p.index || s.path_len != p.path_len || s.found != p.found {
            return Err(format!("{at}: attempt metadata diverged"));
        }
        compare_stats(&s.stats, &p.stats, &at)?;
    }
    Ok(())
}

/// Equality of two pipeline reports (the portfolio-vs-sequential
/// contract of DESIGN.md §9).
pub fn compare_pipeline_reports(
    seq: &StatSymReport,
    par: &StatSymReport,
    label: &str,
) -> Result<(), String> {
    if seq.candidate_used != par.candidate_used {
        return Err(format!(
            "{label}: candidate_used diverged: {:?} vs {:?}",
            seq.candidate_used, par.candidate_used
        ));
    }
    match (&seq.found, &par.found) {
        (None, None) => {}
        (Some(s), Some(p)) => compare_found(s, p).map_err(|e| format!("{label}: {e}"))?,
        (s, p) => {
            return Err(format!(
                "{label}: found mismatch: seq {:?} vs par {:?}",
                s.as_ref().map(|f| &f.fault),
                p.as_ref().map(|f| &f.fault)
            ))
        }
    }
    compare_attempts(&seq.attempts, &par.attempts, label)
}

// ---------------------------------------------------------------------
// The oracles
// ---------------------------------------------------------------------

fn lower(program: &Program) -> Result<Module, String> {
    sir::lower(program).map_err(|e| format!("lowering failed: {e}"))
}

/// Replays the found input of every scheduler's run on the concrete VM
/// and demands the same fault class at the same function.
fn replay(program: &Program, seed: u64) -> Result<OracleOutcome, String> {
    let module = lower(program)?;
    let mut any = false;
    for scheduler in [
        SchedulerKind::Bfs,
        SchedulerKind::Dfs,
        SchedulerKind::Random { seed },
    ] {
        let mut engine = Engine::new(
            &module,
            EngineConfig {
                scheduler,
                ..budget()
            },
        );
        let report = engine.run();
        let Some(found) = report.outcome.found() else {
            continue;
        };
        any = true;
        let vm = Vm::new(&module, VmConfig::default());
        let run = vm
            .run(&found.inputs)
            .map_err(|e| format!("{scheduler:?}: VM rejected model inputs: {e}"))?;
        let Some(fault) = run.outcome.fault() else {
            return Err(format!(
                "{scheduler:?}: symbolic fault {:?} in `{}` but model inputs {:?} \
                 complete concretely",
                found.fault.kind, found.fault.func, found.inputs
            ));
        };
        if FaultClass::of_kind(&fault.kind) != FaultClass::of_kind(&found.fault.kind) {
            return Err(format!(
                "{scheduler:?}: fault class diverged: symbolic {:?} vs concrete {:?}",
                found.fault.kind, fault.kind
            ));
        }
        if fault.func != found.fault.func {
            return Err(format!(
                "{scheduler:?}: fault site diverged: symbolic `{}` vs concrete `{}`",
                found.fault.func, fault.func
            ));
        }
    }
    Ok(if any {
        OracleOutcome::Pass
    } else {
        OracleOutcome::Vacuous("no scheduler found a fault")
    })
}

/// Exhaustive-vs-guided completeness: any fault exhaustive search finds
/// must also be found by the statistics-guided pipeline, within the
/// same engine budget, whenever the analysis yields candidate paths.
fn completeness(program: &Program, seed: u64) -> Result<OracleOutcome, String> {
    let module = lower(program)?;
    let exhaustive = Engine::new(&module, budget()).run();
    let Some(found) = exhaustive.outcome.found() else {
        return Ok(OracleOutcome::Vacuous("exhaustive search found no fault"));
    };
    let spec = input_spec(program);
    let logs = mint_logs(&module, &spec, seed, Some(&found.inputs));
    let statsym = StatSym::new(statsym_config(1));
    let analysis = statsym.analyze(&logs);
    if analysis
        .candidates
        .as_ref()
        .is_none_or(|c| c.paths.is_empty())
    {
        return Ok(OracleOutcome::Vacuous("analysis yields no candidate paths"));
    }
    let report = statsym.run_with_analysis(&module, analysis);
    let Some(guided) = &report.found else {
        return Err(format!(
            "exhaustive found {:?} in `{}` but guided search found nothing \
             across {} candidate(s)",
            found.fault.kind,
            found.fault.func,
            report.attempts.len()
        ));
    };
    if FaultClass::of_kind(&guided.fault.kind) != FaultClass::of_kind(&found.fault.kind)
        || guided.fault.func != found.fault.func
    {
        return Err(format!(
            "guided fault {:?} in `{}` diverges from exhaustive {:?} in `{}`",
            guided.fault.kind, guided.fault.func, found.fault.kind, found.fault.func
        ));
    }
    Ok(OracleOutcome::Pass)
}

/// Portfolio-vs-sequential identity at 2 and 4 workers. Candidate lists
/// with a single path are padded with a duplicate so the portfolio
/// actually engages (the pipeline falls back to the sequential loop for
/// single-candidate lists).
fn portfolio(program: &Program, seed: u64) -> Result<OracleOutcome, String> {
    let module = lower(program)?;
    let exhaustive = Engine::new(&module, budget()).run();
    let spec = input_spec(program);
    let logs = mint_logs(
        &module,
        &spec,
        seed,
        exhaustive.outcome.found().map(|f| &f.inputs),
    );
    let mut analysis = StatSym::new(statsym_config(1)).analyze(&logs);
    {
        let Some(cs) = analysis.candidates.as_mut() else {
            return Ok(OracleOutcome::Vacuous("analysis yields no candidate paths"));
        };
        if cs.paths.is_empty() {
            return Ok(OracleOutcome::Vacuous("analysis yields no candidate paths"));
        }
        if cs.paths.len() < 2 {
            let dup = cs.paths.clone();
            cs.paths.extend(dup);
        }
    }
    let seq = StatSym::new(statsym_config(1)).run_with_analysis(&module, analysis.clone());
    for workers in [2usize, 4] {
        let par =
            StatSym::new(statsym_config(workers)).run_with_analysis(&module, analysis.clone());
        compare_pipeline_reports(&seq, &par, &format!("workers={workers}"))?;
    }
    // Steal sweep: with the work-stealing executor engaged inside each
    // candidate, the whole pipeline report must be invariant in the
    // state-worker count. Steal mode walks in its own deterministic
    // order rather than the hook-priority order, so the reference is
    // steal at 1 state worker, not the legacy executor.
    let steal = |state_workers: usize| {
        let mut config = statsym_config(2);
        config.engine.state_workers = state_workers;
        config.engine.steal_slice = 64;
        StatSym::new(config).run_with_analysis(&module, analysis.clone())
    };
    let steal_base = steal(1);
    for state_workers in [2usize, 4] {
        compare_pipeline_reports(
            &steal_base,
            &steal(state_workers),
            &format!("steal state_workers={state_workers}"),
        )?;
    }
    Ok(OracleOutcome::Pass)
}

/// Metamorphic cache invariance: no cache, a 1-shard cache, an 8-shard
/// cache, and a pre-warmed cache must all leave exploration untouched.
fn cache_metamorphic(program: &Program) -> Result<OracleOutcome, String> {
    let module = lower(program)?;
    let run = |cache: Option<Arc<dyn QueryCache + Send + Sync>>| -> EngineReport {
        let mut engine = Engine::new(&module, budget());
        if let Some(c) = cache {
            engine.set_shared_cache(c);
        }
        engine.run()
    };
    let base = run(None);
    let one: Arc<SharedCache> = Arc::new(SharedCache::new(1));
    let eight: Arc<SharedCache> = Arc::new(SharedCache::new(8));
    compare_engine_reports(&base, &run(Some(one)), "shards=1")?;
    compare_engine_reports(&base, &run(Some(eight.clone())), "shards=8")?;
    // Second run against the now-populated cache: verdict hits replace
    // solver search but must not perturb exploration.
    compare_engine_reports(&base, &run(Some(eight)), "pre-warmed")?;
    Ok(OracleOutcome::Pass)
}
