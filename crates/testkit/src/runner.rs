//! Seed-range soak driver behind the `statsym-testkit` binary.
//!
//! For each seed: generate a program, run the four differential oracles
//! and the chaos oracle, and on any violation greedily shrink the
//! program to a minimal reproducer. Failures carry the seed, the
//! violated oracle, and the shrunk source, so the fix-reproduce loop is
//! `statsym-testkit --seeds N..N+1`.

use crate::chaos::check_chaos;
use crate::gen::{generate, FaultClass};
use crate::oracles::{budget, check, check_all, OracleOutcome};
use crate::shrink::shrink;
use minic::ast::Program;
use minic::print_program;
use symex::Engine;

/// After this many failures the soak stops early: dozens of failures
/// are usually one bug, and shrinking each costs real time.
const MAX_FAILURES: usize = 3;

/// What to soak.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// First seed (inclusive).
    pub start: u64,
    /// Last seed (exclusive).
    pub end: u64,
    /// Replace the real oracles with a deliberately broken one that
    /// rejects any program with a reachable fault — a demonstration
    /// (and self-test) of the shrink-and-report path.
    pub sabotage: bool,
    /// Also run the chaos (fault-injection) oracle per seed.
    pub chaos: bool,
    /// Log per-seed outcomes to stderr.
    pub verbose: bool,
    /// Only soak seeds whose planted fault class matches (per-family
    /// sweeps); `None` soaks every seed.
    pub class: Option<FaultClass>,
}

impl Default for RunnerConfig {
    fn default() -> RunnerConfig {
        RunnerConfig {
            start: 0,
            end: 100,
            sabotage: false,
            chaos: true,
            verbose: false,
            class: None,
        }
    }
}

/// One shrunk, reproducible oracle violation.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The generating seed.
    pub seed: u64,
    /// Label of the violated oracle.
    pub oracle: String,
    /// What diverged.
    pub message: String,
    /// Minimal program that still violates the oracle.
    pub shrunk_source: String,
}

impl std::fmt::Display for SeedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "FAIL seed={} oracle={}", self.seed, self.oracle)?;
        writeln!(f, "  {}", self.message)?;
        writeln!(
            f,
            "  reproduce: statsym-testkit --seeds {}..{}",
            self.seed,
            self.seed + 1
        )?;
        writeln!(f, "  minimal reproducer:")?;
        for line in self.shrunk_source.lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// Aggregate soak result.
#[derive(Debug, Clone, Default)]
pub struct RunnerReport {
    /// Seeds actually executed (may stop early on [`MAX_FAILURES`]).
    pub seeds_run: u64,
    /// Oracle checks that engaged and held.
    pub passes: u64,
    /// Oracle checks that were vacuous for their program.
    pub vacuous: u64,
    /// Shrunk violations.
    pub failures: Vec<SeedFailure>,
}

impl RunnerReport {
    /// True when no oracle was violated.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for RunnerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "testkit: {} seed(s), {} oracle pass(es), {} vacuous, {} failure(s)",
            self.seeds_run,
            self.passes,
            self.vacuous,
            self.failures.len()
        )?;
        for failure in &self.failures {
            writeln!(f)?;
            write!(f, "{failure}")?;
        }
        Ok(())
    }
}

/// A deliberately wrong oracle: claims generated programs are
/// fault-free. Almost every seed violates it, and the shrinker reduces
/// the violation to the bare faulting core — which is exactly what a
/// real oracle failure report should look like.
fn sabotage_check(program: &Program) -> Result<(), String> {
    let module = sir::lower(program).map_err(|e| format!("lowering failed: {e}"))?;
    let report = Engine::new(&module, budget()).run();
    match report.outcome.found() {
        Some(found) => Err(format!(
            "sabotage oracle (intentionally wrong): program faults with {:?} in `{}`",
            found.fault.kind, found.fault.func
        )),
        None => Ok(()),
    }
}

fn record_failure(
    report: &mut RunnerReport,
    program: &Program,
    seed: u64,
    oracle: &str,
    message: String,
    still_fails: &mut dyn FnMut(&Program) -> bool,
) {
    let shrunk = shrink(program, still_fails);
    report.failures.push(SeedFailure {
        seed,
        oracle: oracle.to_string(),
        message,
        shrunk_source: print_program(&shrunk),
    });
}

/// Runs the soak described by `config`.
pub fn run_seeds(config: &RunnerConfig) -> RunnerReport {
    let mut report = RunnerReport::default();
    for seed in config.start..config.end {
        if report.failures.len() >= MAX_FAILURES {
            break;
        }
        let g = generate(seed);
        if config.class.is_some_and(|c| c != g.class) {
            continue;
        }
        report.seeds_run += 1;

        if config.sabotage {
            match sabotage_check(&g.program) {
                Ok(()) => report.passes += 1,
                Err(message) => record_failure(
                    &mut report,
                    &g.program,
                    seed,
                    "sabotage",
                    message,
                    &mut |q| sabotage_check(q).is_err(),
                ),
            }
            continue;
        }

        match check_all(&g.program, seed) {
            Ok(outcomes) => {
                for outcome in &outcomes {
                    match outcome {
                        OracleOutcome::Pass => report.passes += 1,
                        OracleOutcome::Vacuous(_) => report.vacuous += 1,
                    }
                }
                if config.verbose {
                    eprintln!(
                        "seed {seed} [{}]: {} oracle(s) engaged",
                        g.class.label(),
                        outcomes
                            .iter()
                            .filter(|o| matches!(o, OracleOutcome::Pass))
                            .count()
                    );
                }
            }
            Err(failure) => {
                let oracle = failure.oracle;
                record_failure(
                    &mut report,
                    &g.program,
                    seed,
                    oracle.label(),
                    failure.message,
                    &mut |q| check(oracle, q, seed).is_err(),
                );
                continue;
            }
        }

        if config.chaos {
            match check_chaos(&g.program, seed) {
                Ok(OracleOutcome::Pass) => report.passes += 1,
                Ok(OracleOutcome::Vacuous(_)) => report.vacuous += 1,
                Err(message) => {
                    record_failure(&mut report, &g.program, seed, "chaos", message, &mut |q| {
                        check_chaos(q, seed).is_err()
                    })
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_passes() {
        let report = run_seeds(&RunnerConfig {
            start: 0,
            end: 8,
            ..RunnerConfig::default()
        });
        assert!(report.passed(), "{report}");
        assert_eq!(report.seeds_run, 8);
        assert!(report.passes > 0, "no oracle ever engaged: {report}");
    }

    #[test]
    fn class_filter_soaks_only_matching_seeds() {
        let report = run_seeds(&RunnerConfig {
            start: 0,
            end: 64,
            chaos: false,
            class: Some(FaultClass::UseAfterFree),
            ..RunnerConfig::default()
        });
        assert!(report.passed(), "{report}");
        let expected = (0..64)
            .filter(|&s| generate(s).class == FaultClass::UseAfterFree)
            .count() as u64;
        assert!(expected > 0, "no uaf seed in 0..64");
        assert_eq!(report.seeds_run, expected);
    }

    #[test]
    fn sabotage_produces_shrunk_reproducers() {
        let report = run_seeds(&RunnerConfig {
            start: 0,
            end: 32,
            sabotage: true,
            ..RunnerConfig::default()
        });
        assert!(!report.passed(), "sabotage oracle never fired");
        let failure = &report.failures[0];
        assert_eq!(failure.oracle, "sabotage");
        // The reproducer is valid minic and still violates the oracle.
        let program = minic::parse_program(&failure.shrunk_source)
            .unwrap_or_else(|e| panic!("shrunk source no longer parses: {e}"));
        assert!(sabotage_check(&program).is_err());
        // And it is smaller than the original.
        let original = print_program(&generate(failure.seed).program);
        assert!(
            failure.shrunk_source.len() < original.len(),
            "shrinker made no progress: {} vs {}",
            failure.shrunk_source.len(),
            original.len()
        );
    }
}
