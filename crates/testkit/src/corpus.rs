//! Seed-pinned corpus: the hand-written differential programs promoted
//! into testkit entries (DESIGN.md §11).
//!
//! `tests/differential.rs` pinned the engine↔VM replay contract on five
//! fixed programs, one per interesting shape (guarded assert, string
//! copy overflow, divide-by-zero, `%`-expansion overflow, global-state
//! guard). The corpus runs those same programs under *all four* oracles
//! plus the chaos oracle, each with a pinned seed so the log corpora the
//! statistical stages see are reproducible byte-for-byte.

use minic::ast::Program;

/// One corpus program with its pinned oracle seed.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Stable name, used in failure reports.
    pub name: &'static str,
    /// Pinned seed driving log minting and randomized schedules.
    pub seed: u64,
    /// minic source.
    pub source: &'static str,
}

impl CorpusEntry {
    /// Parses the entry. Corpus sources are fixed, so a parse failure is
    /// a corpus bug and panics.
    pub fn program(&self) -> Program {
        minic::parse_program(self.source)
            .unwrap_or_else(|e| panic!("corpus entry `{}` no longer parses: {e}", self.name))
    }
}

/// The pinned corpus, mirroring `tests/differential.rs`.
pub const CORPUS: &[CorpusEntry] = &[
    CorpusEntry {
        name: "int_assert",
        seed: 1101,
        source: r#"
            fn check(v: int) { assert(v * 3 < 250); }
            fn main() { let n: int = input_int("n"); if (n > 0) { check(n); } }
        "#,
    },
    CorpusEntry {
        name: "string_copy_overflow",
        seed: 1102,
        source: r#"
            fn fill(s: str) {
                let b: buf[5];
                let i: int = 0;
                while (char_at(s, i) != 0) { buf_set(b, i, char_at(s, i)); i = i + 1; }
                buf_set(b, i, 0);
            }
            fn main() { let s: str = input_str("s", 10); fill(s); }
        "#,
    },
    CorpusEntry {
        name: "div_by_zero",
        seed: 1103,
        source: r#"
            fn main() -> int {
                let d: int = input_int("d");
                let n: int = input_int("n");
                if (n > 5) { return n / (d - 7); }
                return 0;
            }
        "#,
    },
    CorpusEntry {
        name: "expansion_overflow",
        seed: 1104,
        source: r#"
            fn expand(s: str) {
                let out: buf[9];
                let i: int = 0;
                let o: int = 0;
                while (char_at(s, i) != 0) {
                    if (char_at(s, i) == '%') {
                        buf_set(out, o, '2'); buf_set(out, o + 1, '5');
                        o = o + 2;
                    } else {
                        buf_set(out, o, char_at(s, i));
                        o = o + 1;
                    }
                    i = i + 1;
                }
                buf_set(out, o, 0);
            }
            fn main() { let s: str = input_str("s", 8); expand(s); }
        "#,
    },
    CorpusEntry {
        name: "global_state_guard",
        seed: 1105,
        source: r#"
            global armed: int = 0;
            fn arm(v: int) { if (v > 9) { armed = 1; } }
            fn fire(v: int) -> int { if (armed == 1) { assert(v != 13); } return v; }
            fn main() {
                let v: int = input_int("v");
                arm(v);
                print(fire(v));
            }
        "#,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::check_chaos;
    use crate::oracles::{check_all, OracleOutcome};

    #[test]
    fn corpus_parses_and_lowers() {
        for entry in CORPUS {
            let program = entry.program();
            sir::lower(&program).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        }
    }

    #[test]
    fn corpus_passes_all_oracles() {
        for entry in CORPUS {
            let program = entry.program();
            let outcomes = check_all(&program, entry.seed)
                .unwrap_or_else(|f| panic!("corpus `{}` seed {}: {f}", entry.name, entry.seed));
            // Every corpus program has a reachable fault, so the replay
            // and completeness oracles must actually engage.
            assert_eq!(
                outcomes[0],
                OracleOutcome::Pass,
                "{}: replay was vacuous",
                entry.name
            );
            assert_eq!(
                outcomes[1],
                OracleOutcome::Pass,
                "{}: completeness was vacuous",
                entry.name
            );
        }
    }

    #[test]
    fn corpus_survives_chaos() {
        for entry in CORPUS {
            let program = entry.program();
            // Two schedules per entry: the pinned seed and a shifted one,
            // covering different miss/starve combinations.
            for seed in [entry.seed, entry.seed ^ 0xffff] {
                check_chaos(&program, seed)
                    .unwrap_or_else(|e| panic!("corpus `{}` chaos seed {seed}: {e}", entry.name));
            }
        }
    }
}
