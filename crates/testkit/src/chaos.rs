//! Fault injection (`testkit::chaos`, DESIGN.md §11).
//!
//! Two injection axes, both derived deterministically from a seed:
//!
//! * **Cache chaos** — [`ChaosCache`] wraps any [`QueryCache`] and
//!   injects *spurious misses* (lookups answered `None` even when the
//!   inner cache holds a verdict) and *dropped publishes*. Both are a
//!   strict subset of legal cache behaviour — the cache contract is
//!   advisory — so a correct engine must produce the identical
//!   exploration, fault, and attempt list with or without chaos.
//! * **Budget chaos** — [`ChaosSchedule`] starves the solver
//!   (`max_nodes` so small that queries come back `Unknown`, the
//!   engine's timeout surrogate) and/or the engine (tiny step budget),
//!   modelling solver timeouts and engine exhaustion. A correct engine
//!   *degrades*: it suspends or exhausts, never panics, and anything
//!   it still reports as a fault must replay concretely.
//!
//! The decision for a given cache key is a pure hash of (seed, key), so
//! injection is deterministic per key and identical across worker
//! threads and run orders — chaos runs stay reproducible from the seed.

use crate::gen::FaultClass;
use crate::oracles::{
    budget, compare_pipeline_reports, input_spec, mint_logs, statsym_config, OracleOutcome,
};
use concrete::{Vm, VmConfig};
use minic::ast::Program;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use solver::{CachedVerdict, QueryCache, SharedCache, SharedCacheStats, SolverConfig};
use statsym_core::pipeline::{StatSym, StatSymReport};
use statsym_core::run_portfolio_with_cache;
use statsym_telemetry::{render_trace, Clock, MemRecorder, NOOP};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use symex::{Engine, EngineConfig};

use crate::oracles::compare_engine_reports;

/// A deterministic, seed-derived fault-injection plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSchedule {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Probability that a cache lookup is answered `None` regardless of
    /// the inner cache's contents.
    pub miss_rate: f64,
    /// Probability that a publish is silently dropped.
    pub drop_rate: f64,
    /// Starve the solver: `max_nodes` so small most branch queries
    /// return `Unknown` (the decision procedure's timeout analogue).
    pub starve_solver: bool,
    /// Starve the engine: a step budget far below what exploration
    /// needs, forcing `Exhausted(Steps)`.
    pub tiny_steps: bool,
}

impl ChaosSchedule {
    /// Derives a schedule from a seed. Roughly a third of seeds starve
    /// the solver, a quarter starve the engine, and miss/drop rates
    /// sweep 0 %–100 %.
    pub fn derive(seed: u64) -> ChaosSchedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0_5eed);
        const RATES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];
        ChaosSchedule {
            seed,
            miss_rate: RATES[rng.random_range(0..RATES.len())],
            drop_rate: RATES[rng.random_range(0..RATES.len())],
            starve_solver: rng.random_bool(0.33),
            tiny_steps: rng.random_bool(0.25),
        }
    }

    /// The engine configuration with this schedule's budget chaos
    /// applied on top of `base`.
    pub fn engine_config(&self, base: EngineConfig) -> EngineConfig {
        let mut cfg = base;
        if self.starve_solver {
            cfg.solver = SolverConfig {
                max_nodes: 3,
                ..SolverConfig::default()
            };
        }
        if self.tiny_steps {
            cfg.max_steps = 120;
        }
        cfg
    }
}

/// Counters of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Lookups forced to miss.
    pub injected_misses: u64,
    /// Publishes silently dropped.
    pub dropped_publishes: u64,
}

/// A [`QueryCache`] wrapper that injects deterministic spurious misses
/// and dropped publishes per [`ChaosSchedule`].
pub struct ChaosCache {
    inner: Arc<dyn QueryCache + Send + Sync>,
    schedule: ChaosSchedule,
    injected_misses: AtomicU64,
    dropped_publishes: AtomicU64,
}

impl ChaosCache {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: Arc<dyn QueryCache + Send + Sync>, schedule: ChaosSchedule) -> ChaosCache {
        ChaosCache {
            inner,
            schedule,
            injected_misses: AtomicU64::new(0),
            dropped_publishes: AtomicU64::new(0),
        }
    }

    /// Injection counters so far.
    pub fn chaos_stats(&self) -> ChaosStats {
        ChaosStats {
            injected_misses: self.injected_misses.load(Ordering::Relaxed),
            dropped_publishes: self.dropped_publishes.load(Ordering::Relaxed),
        }
    }

    /// Pure per-key decision in `[0, 1)`: SplitMix64 of (seed, key,
    /// salt). Thread- and order-independent.
    fn roll(&self, key: u64, salt: u64) -> f64 {
        let mut z = self
            .schedule
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key)
            .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl QueryCache for ChaosCache {
    fn lookup(&self, key: u64) -> Option<CachedVerdict> {
        if self.roll(key, 1) < self.schedule.miss_rate {
            self.injected_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.inner.lookup(key)
    }

    fn publish(&self, key: u64, verdict: CachedVerdict) {
        if self.roll(key, 2) < self.schedule.drop_rate {
            self.dropped_publishes.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.inner.publish(key, verdict);
    }

    fn entries(&self) -> usize {
        self.inner.entries()
    }

    fn stats(&self) -> SharedCacheStats {
        self.inner.stats()
    }
}

/// The chaos oracle: under any seed-derived injection schedule the
/// engine must degrade gracefully —
///
/// 1. the run terminates with a normal outcome (a panic fails the
///    harness itself);
/// 2. anything still reported as a fault replays concretely with the
///    same class at the same site (never a *wrong* fault);
/// 3. a 2-worker portfolio over a chaos-wrapped shared cache, with
///    cancellation enabled, still converges to the sequential result;
/// 4. the work-stealing executor at 1, 2, and 4 state workers renders
///    byte-identical traces under budget chaos, and reports identical
///    results even when every shared-cache lookup goes through
///    [`ChaosCache`]-injected misses.
pub fn check_chaos(program: &Program, seed: u64) -> Result<OracleOutcome, String> {
    let module = sir::lower(program).map_err(|e| format!("lowering failed: {e}"))?;
    let schedule = ChaosSchedule::derive(seed);
    let chaos_engine = schedule.engine_config(budget());

    // 1+2: a plain engine under budget chaos terminates and never
    // reports a wrong fault.
    let report = Engine::new(&module, chaos_engine).run();
    if let Some(found) = report.outcome.found() {
        let vm = Vm::new(&module, VmConfig::default());
        let run = vm
            .run(&found.inputs)
            .map_err(|e| format!("chaos {schedule:?}: VM rejected model inputs: {e}"))?;
        let Some(fault) = run.outcome.fault() else {
            return Err(format!(
                "chaos {schedule:?}: reported fault {:?} does not reproduce concretely",
                found.fault.kind
            ));
        };
        if FaultClass::of_kind(&fault.kind) != FaultClass::of_kind(&found.fault.kind)
            || fault.func != found.fault.func
        {
            return Err(format!(
                "chaos {schedule:?}: wrong fault: symbolic {:?}@{} vs concrete {:?}@{}",
                found.fault.kind, found.fault.func, fault.kind, fault.func
            ));
        }
    }

    // 4: the work-stealing executor under the same budget chaos is
    // invariant in the state-worker count. Trace byte-identity is
    // checked without a shared cache (cache-traffic counters in the
    // rendered trace are legitimately schedule-dependent); report
    // identity is then re-checked with a chaos-wrapped shared cache so
    // injected misses exercise the steal workers' cache path too.
    let steal_cfg = |state_workers: usize| EngineConfig {
        state_workers,
        steal_slice: 13,
        steal_seed: seed,
        lineage: true,
        ..chaos_engine
    };
    let traced_steal = |state_workers: usize| {
        let rec = MemRecorder::new(Clock::steps());
        let report = {
            let mut eng = Engine::new(&module, steal_cfg(state_workers));
            eng.set_recorder(&rec);
            eng.run()
        };
        (render_trace(&rec.finish()), report)
    };
    let (steal_trace, steal_report) = traced_steal(1);
    if let Some(found) = steal_report.outcome.found() {
        let vm = Vm::new(&module, VmConfig::default());
        let run = vm
            .run(&found.inputs)
            .map_err(|e| format!("chaos {schedule:?}: VM rejected steal model inputs: {e}"))?;
        if run.outcome.fault().is_none() {
            return Err(format!(
                "chaos {schedule:?}: steal-mode fault {:?} does not reproduce concretely",
                found.fault.kind
            ));
        }
    }
    for state_workers in [2usize, 4] {
        let (trace, report) = traced_steal(state_workers);
        if trace != steal_trace {
            return Err(format!(
                "chaos {schedule:?}: steal trace at {state_workers} state workers \
                 is not byte-identical to 1"
            ));
        }
        compare_engine_reports(
            &steal_report,
            &report,
            &format!("chaos steal state_workers={state_workers}"),
        )?;
    }
    let cached_steal = |state_workers: usize| {
        let chaos_cache: Arc<dyn QueryCache + Send + Sync> =
            Arc::new(ChaosCache::new(Arc::new(SharedCache::new(4)), schedule));
        let mut eng = Engine::new(&module, steal_cfg(state_workers));
        eng.set_shared_cache(chaos_cache);
        eng.run()
    };
    let cached_base = cached_steal(1);
    for state_workers in [2usize, 4] {
        compare_engine_reports(
            &cached_base,
            &cached_steal(state_workers),
            &format!("chaos steal+cache state_workers={state_workers}"),
        )?;
    }

    // 3: portfolio over a chaos cache still matches sequential.
    let spec = input_spec(program);
    let exhaustive = Engine::new(&module, budget()).run();
    let logs = mint_logs(
        &module,
        &spec,
        seed,
        exhaustive.outcome.found().map(|f| &f.inputs),
    );
    let mut config = statsym_config(1);
    config.engine = chaos_engine;
    let mut analysis = StatSym::new(config).analyze(&logs);
    let Some(cs) = analysis.candidates.as_mut() else {
        return Ok(OracleOutcome::Pass);
    };
    if cs.paths.is_empty() {
        return Ok(OracleOutcome::Pass);
    }
    if cs.paths.len() < 2 {
        let dup = cs.paths.clone();
        cs.paths.extend(dup);
    }
    let paths = analysis.candidates.as_ref().unwrap().paths.clone();

    let seq = StatSym::new(config).run_with_analysis(&module, analysis.clone());

    let mut par_config = config;
    par_config.workers = 2;
    par_config.cancel_on_found = true;
    let chaos_cache: Arc<dyn QueryCache + Send + Sync> =
        Arc::new(ChaosCache::new(Arc::new(SharedCache::new(8)), schedule));
    let pins = concrete::InputMap::new();
    let out = run_portfolio_with_cache(&module, &paths, &par_config, &pins, &NOOP, chaos_cache);

    let par = StatSymReport {
        analysis,
        attempts: out.attempts,
        found: out.found,
        candidate_used: out.candidate_used,
        symex_time: std::time::Duration::ZERO,
    };
    compare_pipeline_reports(&seq, &par, &format!("chaos portfolio {schedule:?}"))
        .map_err(|e| format!("chaos cache perturbed the result: {e}"))?;
    Ok(OracleOutcome::Pass)
}
