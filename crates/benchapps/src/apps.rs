//! The benchmark applications and their input-distribution models.

use concrete::{InputMap, InputValue};
use minic::{program_stats, Program, ProgramStats};
use rand::rngs::StdRng;
use rand::RngExt;
use sir::Module;

/// One benchmark application: MiniC source, lowered module, the inputs
/// pinned concrete during symbolic execution (the paper's "semantically
/// reasonable program input options", §VII-A), and a random input
/// generator emulating user behavior.
pub struct BenchApp {
    /// Short name (`polymorph`, `ctree`, `grep`, `thttpd`, `motivating`).
    pub name: &'static str,
    /// One-line description of program and vulnerability.
    pub description: &'static str,
    /// MiniC source text.
    pub source: &'static str,
    /// Parsed program.
    pub program: Program,
    /// Lowered SIR module.
    pub module: Module,
    /// Option-like inputs pinned concrete for symbolic execution (both
    /// the pure baseline and StatSym receive the same pins).
    pub pins: InputMap,
    /// Generates one random input set; `want_faulty` biases toward the
    /// vulnerability-triggering region.
    pub gen_inputs: fn(&mut StdRng, bool) -> InputMap,
}

impl BenchApp {
    fn build(
        name: &'static str,
        description: &'static str,
        source: &'static str,
        pins: InputMap,
        gen_inputs: fn(&mut StdRng, bool) -> InputMap,
    ) -> BenchApp {
        let program = minic::parse_program(source)
            .unwrap_or_else(|e| panic!("benchmark `{name}` does not parse: {e}"));
        let module = sir::lower(&program)
            .unwrap_or_else(|e| panic!("benchmark `{name}` does not lower: {e}"));
        sir::verify(&module).unwrap_or_else(|e| panic!("benchmark `{name}` invalid SIR: {e}"));
        BenchApp {
            name,
            description,
            source,
            program,
            module,
            pins,
            gen_inputs,
        }
    }

    /// Table I program statistics for this application.
    pub fn stats(&self) -> ProgramStats {
        program_stats(&self.program)
    }
}

fn rand_name(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(b'a'..=b'z')).collect()
}

// ---------------------------------------------------------------------
// polymorph — BugBench file-name conversion utility.
// Vulnerability: unchecked copy of the user-provided file name into the
// fixed `newName` stack buffer in convert_fileName() (512 bytes in the
// original, scaled to 12 here). Fault triggers for names of length >= 12.
// ---------------------------------------------------------------------

const POLYMORPH_SRC: &str = r#"
// polymorph: converts file names to lowercase ("unixize") — BugBench.
global track: int = 0;
global clean: int = 0;
global hidden: int = 0;
global hidden_file: int = 0;
global init_file: int = 0;
global wd: str = "/home/user/files";

fn is_fileHidden(suspect: str) -> bool {
    track = track + 1;
    return char_at(suspect, 0) == '.';
}

fn does_nameHaveUppers(suspect: str) -> bool {
    track = track + 1;
    let c: int = char_at(suspect, 0);
    if (c >= 65) {
        if (c <= 90) { return true; }
    }
    return false;
}

fn does_newnameExist(suspect: str) -> bool {
    track = track + 1;
    return char_at(suspect, 0) == 0;
}

fn convert_fileName(original: str) {
    let newName: buf[12];
    let i: int = 0;
    while (char_at(original, i) != 0) {
        let c: int = char_at(original, i);
        if (c >= 97) {
            buf_set(newName, i, c);          // already lowercase
        } else {
            buf_set(newName, i, c + 32);     // tolower
        }
        i = i + 1;
    }
    buf_set(newName, i, 0);                  // NUL: overflows at len >= 12
    clean = clean + 1;
}

fn grok_commandLine(cmd: str) -> int {
    if (char_at(cmd, 0) != '-') { return 0; }
    let opt: int = char_at(cmd, 1);
    if (opt == 'h') { hidden = 1; return 1; }
    if (opt == 'f') { return 2; }
    return 0;
}

fn main() {
    let cmd: str = input_str("opt", 4);
    let target: str = input_str("file", 20);
    let mode: int = grok_commandLine(cmd);
    if (mode == 0) { print(mode); exit(1); }
    init_file = 1;
    if (is_fileHidden(target)) {
        hidden_file = 1;
        if (hidden == 0) { print(hidden_file); exit(0); }
    }
    if (does_nameHaveUppers(target)) { track = track + 1; }
    if (does_newnameExist(target)) { print(track); exit(0); }
    convert_fileName(target);
    print(clean);
}
"#;

fn polymorph_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let opt = if want_faulty || rng.random_bool(0.9) {
        b"-f".to_vec()
    } else if rng.random_bool(0.5) {
        b"-h".to_vec()
    } else {
        b"-x".to_vec() // rejected option: early exit, correct run
    };
    let len = if want_faulty {
        rng.random_range(12..=20)
    } else {
        rng.random_range(1..=11)
    };
    let file = rand_name(rng, len);
    [
        ("opt".to_string(), InputValue::Str(opt)),
        ("file".to_string(), InputValue::Str(file)),
    ]
    .into_iter()
    .collect()
}

/// The polymorph benchmark.
pub fn polymorph() -> BenchApp {
    BenchApp::build(
        "polymorph",
        "file-name conversion utility; stack buffer overrun in convert_fileName (BugBench)",
        POLYMORPH_SRC,
        [("opt".to_string(), InputValue::Str(b"-f".to_vec()))]
            .into_iter()
            .collect(),
        polymorph_inputs,
    )
}

// ---------------------------------------------------------------------
// CTree — STONESOUP directory-tree visualizer.
// Vulnerability: a tainted environment variable copied into the fixed
// `linedraw` stack buffer in initlinedraw() (64 bytes in the original,
// scaled to 16). Fault triggers for taint length >= 16.
// ---------------------------------------------------------------------

const CTREE_SRC: &str = r#"
// ctree: displays the file system hierarchy — STONESOUP test suite.
global lines_drawn: int = 0;
global dirs_seen: int = 0;
global files_seen: int = 0;
global max_depth: int = 0;
global quiet: int = 0;
global draw_ascii: int = 0;

fn parse_options(opts: str) -> int {
    let i: int = 0;
    let ok: int = 1;
    while (char_at(opts, i) != 0) {
        let c: int = char_at(opts, i);
        if (c == 'n') { draw_ascii = 1; }
        else if (c == 'q') { quiet = 1; }
        else { ok = 0; }
        i = i + 1;
    }
    return ok;
}

fn print_entry(name_len: int, depth: int) {
    files_seen = files_seen + 1;
    if (depth > max_depth) { max_depth = depth; }
    lines_drawn = lines_drawn + 1;
    if (quiet == 0) { print(name_len, depth); }
}

fn walk_level(entries: int, depth: int) {
    let i: int = 0;
    while (i < entries) {
        print_entry(i + 3, depth);
        i = i + 1;
    }
    dirs_seen = dirs_seen + 1;
}

fn stonesoup_read_taint() -> str {
    let tainted: str = input_str("stonesoup_env", 24);
    return tainted;
}

fn initlinedraw(drawing: str) {
    let linedraw: buf[16];
    let i: int = 0;
    while (char_at(drawing, i) != 0) {
        let c: int = char_at(drawing, i);
        if (c < 32) { buf_set(linedraw, i, '?'); }
        else if (c > 126) { buf_set(linedraw, i, '#'); }
        else { buf_set(linedraw, i, c); }
        i = i + 1;
        lines_drawn = lines_drawn + 1;
    }
    buf_set(linedraw, i, 0);                 // overflows at len >= 16
}

fn main() {
    let opts: str = input_str("opts", 8);
    let entries: int = input_int("entries");
    if (parse_options(opts) == 0) { print(0); exit(1); }
    let taint: str = stonesoup_read_taint();
    initlinedraw(taint);
    let d: int = 0;
    while (d < 3) {
        walk_level(entries, d);
        d = d + 1;
    }
    print(lines_drawn, dirs_seen, files_seen);
}
"#;

fn ctree_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let opts: Vec<u8> = match rng.random_range(0..3) {
        0 => b"nq".to_vec(),
        1 => b"n".to_vec(),
        _ => b"q".to_vec(),
    };
    let len = if want_faulty {
        rng.random_range(16..=24)
    } else {
        rng.random_range(0..=15)
    };
    let taint = rand_name(rng, len);
    [
        ("opts".to_string(), InputValue::Str(opts)),
        (
            "entries".to_string(),
            InputValue::Int(rng.random_range(1..=8)),
        ),
        ("stonesoup_env".to_string(), InputValue::Str(taint)),
    ]
    .into_iter()
    .collect()
}

/// The CTree benchmark.
pub fn ctree() -> BenchApp {
    BenchApp::build(
        "ctree",
        "directory tree visualizer; tainted env var overflows linedraw buffer in initlinedraw (STONESOUP)",
        CTREE_SRC,
        [
            ("opts".to_string(), InputValue::Str(b"nq".to_vec())),
            ("entries".to_string(), InputValue::Int(2)),
        ]
        .into_iter()
        .collect(),
        ctree_inputs,
    )
}

// ---------------------------------------------------------------------
// Grep — STONESOUP plain-text search.
// Vulnerability: a tainted environment buffer upper-cased into a fixed
// 28-byte stack buffer in stonesoup_handle_taint(). Fault triggers for
// taint length >= 28.
// ---------------------------------------------------------------------

const GREP_SRC: &str = r#"
// grep: command-line plain-text search — STONESOUP test suite.
global lines_matched: int = 0;
global chars_scanned: int = 0;
global invert: int = 0;
global count_only: int = 0;
global taint_len: int = 0;

fn parse_flags(flags: str) {
    let i: int = 0;
    while (char_at(flags, i) != 0) {
        let c: int = char_at(flags, i);
        if (c == 'v') { invert = 1; }
        if (c == 'c') { count_only = 1; }
        i = i + 1;
    }
}

fn match_here(line: str, li: int, pattern: str, pi: int) -> bool {
    if (char_at(pattern, pi) == 0) { return true; }
    if (char_at(line, li) == 0) { return false; }
    chars_scanned = chars_scanned + 1;
    if (char_at(line, li) == char_at(pattern, pi)) {
        return match_here(line, li + 1, pattern, pi + 1);
    }
    return false;
}

fn match_line(line: str, pattern: str) -> bool {
    let i: int = 0;
    while (char_at(line, i) != 0) {
        if (match_here(line, i, pattern, 0)) { return true; }
        i = i + 1;
    }
    return false;
}

fn scan_input(pattern: str, line: str, reps: int) {
    let r: int = 0;
    while (r < reps) {
        let hit: bool = match_line(line, pattern);
        if (hit) {
            if (invert == 0) { lines_matched = lines_matched + 1; }
        } else {
            if (invert == 1) { lines_matched = lines_matched + 1; }
        }
        r = r + 1;
    }
}

fn validate_env(tainted: str) -> int {
    // Reject env values with a leading NUL; depth of validation varies.
    if (char_at(tainted, 0) == 0) { return 0; }
    return 1;
}

fn audit_taint(tainted: str) {
    chars_scanned = chars_scanned + 1;
    print(chars_scanned);
}

fn normalize_env(tainted: str) -> int {
    if (char_at(tainted, 0) >= 'n') { return 1; }
    return 0;
}

fn stonesoup_read_taint() -> str {
    let buff: str = input_str("stonesoup_buffer", 40);
    // Validation helpers run only for some env shapes, so they appear in
    // only part of the trace corpus (detour sources for the analysis).
    if (char_at(buff, 0) >= 'g') {
        if (validate_env(buff) == 1) {
            if (char_at(buff, 1) >= 'p') { audit_taint(buff); }
        }
    }
    if (normalize_env(buff) == 1) {
        if (char_at(buff, 2) >= 't') { audit_taint(buff); }
    }
    return buff;
}

fn stonesoup_handle_taint(buff: str) {
    let stack_buffer: buf[28];
    let i: int = 0;
    while (char_at(buff, i) != 0) {
        let c: int = char_at(buff, i);
        if (c >= 97) {
            buf_set(stack_buffer, i, c - 32); // toupper
        } else {
            buf_set(stack_buffer, i, c);
        }
        i = i + 1;
    }
    buf_set(stack_buffer, i, 0);             // overflows at len >= 28
    taint_len = i;
}

fn main() {
    let flags: str = input_str("flags", 6);
    let pattern: str = input_str("pattern", 8);
    let line1: str = input_str("line1", 24);
    let line2: str = input_str("line2", 24);
    let reps: int = input_int("reps");
    parse_flags(flags);
    scan_input(pattern, line1, reps);
    scan_input(pattern, line2, reps);
    let t: str = stonesoup_read_taint();
    stonesoup_handle_taint(t);
    print(lines_matched, chars_scanned, taint_len);
}
"#;

fn grep_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let flags: Vec<u8> = match rng.random_range(0..3) {
        0 => b"v".to_vec(),
        1 => b"c".to_vec(),
        _ => Vec::new(),
    };
    let pat_len = rng.random_range(1..=3);
    let pattern = rand_name(rng, pat_len);
    let l1 = rng.random_range(10..=24);
    let line1 = rand_name(rng, l1);
    let l2 = rng.random_range(10..=24);
    let line2 = rand_name(rng, l2);
    let len = if want_faulty {
        rng.random_range(28..=40)
    } else {
        rng.random_range(0..=27)
    };
    let taint = rand_name(rng, len);
    [
        ("flags".to_string(), InputValue::Str(flags)),
        ("pattern".to_string(), InputValue::Str(pattern)),
        ("line1".to_string(), InputValue::Str(line1)),
        ("line2".to_string(), InputValue::Str(line2)),
        (
            "reps".to_string(),
            InputValue::Int(rng.random_range(10..=40)),
        ),
        ("stonesoup_buffer".to_string(), InputValue::Str(taint)),
    ]
    .into_iter()
    .collect()
}

/// The Grep benchmark.
pub fn grep() -> BenchApp {
    BenchApp::build(
        "grep",
        "plain-text search; tainted env buffer overflows stack_buffer in stonesoup_handle_taint (STONESOUP)",
        GREP_SRC,
        [
            ("flags".to_string(), InputValue::Str(b"c".to_vec())),
            ("pattern".to_string(), InputValue::Str(b"ab".to_vec())),
            ("line1".to_string(), InputValue::Str(b"zzabzz".to_vec())),
            ("line2".to_string(), InputValue::Str(b"qqqq".to_vec())),
            ("reps".to_string(), InputValue::Int(1)),
        ]
        .into_iter()
        .collect(),
        grep_inputs,
    )
}

// ---------------------------------------------------------------------
// thttpd — defang() buffer overflow (CVE-2003-0899).
// Vulnerability: defang() expands '<' and '>' to "&lt;"/"&gt;" while
// copying the request string into a fixed buffer (scaled to 24 bytes);
// enough brackets overflow it.
// ---------------------------------------------------------------------

const THTTPD_SRC: &str = r#"
// thttpd: tiny HTTP server — defang() overflow, CVE-2003-0899 (v2.25b).
global requests_served: int = 0;
global bytes_out: int = 0;
global status: int = 0;
global port: int = 8080;
global keepalive: int = 0;

fn parse_method(req: str) -> int {
    if (char_at(req, 0) != 'G') { return 0; }
    if (char_at(req, 1) != 'E') { return 0; }
    if (char_at(req, 2) != 'T') { return 0; }
    if (char_at(req, 3) != ' ') { return 0; }
    return 1;
}

fn read_header(idx: int) -> int {
    bytes_out = bytes_out + 8;
    return idx + 1;
}

fn count_headers(n: int) -> int {
    let i: int = 0;
    while (i < n) {
        i = read_header(i);
    }
    return i;
}

fn de_dotdot(path: str) -> int {
    // Reject a leading "/.." (bounded scan, as in the original).
    if (char_at(path, 4) == '/') {
        if (char_at(path, 5) == '.') {
            if (char_at(path, 6) == '.') { return 1; }
        }
    }
    return 0;
}

fn defang(url: str) {
    let dfstr: buf[100];
    let i: int = 0;
    let o: int = 0;
    while (char_at(url, i) != 0) {
        let c: int = char_at(url, i);
        if (c == '<') {
            buf_set(dfstr, o, '&');
            buf_set(dfstr, o + 1, 'l');
            buf_set(dfstr, o + 2, 't');
            buf_set(dfstr, o + 3, ';');
            o = o + 4;
        } else if (c == '>') {
            buf_set(dfstr, o, '&');
            buf_set(dfstr, o + 1, 'g');
            buf_set(dfstr, o + 2, 't');
            buf_set(dfstr, o + 3, ';');
            o = o + 4;
        } else {
            buf_set(dfstr, o, c);
            o = o + 1;
        }
        i = i + 1;
    }
    buf_set(dfstr, o, 0);                    // overflows once o >= 100
    bytes_out = bytes_out + o;
}

fn send_response(code: int) {
    status = code;
    requests_served = requests_served + 1;
}

fn log_referer(req: str) {
    bytes_out = bytes_out + 4;
    print(bytes_out);
}

fn check_auth(req: str) -> int {
    if (char_at(req, 5) >= 'a') { return 1; }
    return 0;
}

fn expand_filename(req: str) -> int {
    if (char_at(req, 5) == '<') { return 1; }
    return 0;
}

fn handle_request(req: str, nheaders: int) {
    if (parse_method(req) == 0) { send_response(400); return; }
    let h: int = count_headers(nheaders);
    if (de_dotdot(req) == 1) { send_response(403); return; }
    // Optional processing stages, taken only for some request shapes
    // (detour sources for the statistical analysis).
    if (nheaders > 15) { log_referer(req); }
    if (check_auth(req) == 1) {
        if (nheaders > 8) { log_referer(req); }
    }
    if (expand_filename(req) == 1) { bytes_out = bytes_out + 1; }
    defang(req);
    send_response(200);
    print(h);
}

fn main() {
    let req: str = input_str("request", 128);
    let nheaders: int = input_int("nheaders");
    handle_request(req, nheaders);
    print(requests_served, bytes_out, status);
}
"#;

fn thttpd_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let mut req = b"GET /".to_vec();
    if want_faulty {
        // Long request with enough angle brackets that the "&lt;"/"&gt;"
        // expansion overflows defang's 100-byte output buffer.
        let extra = rng.random_range(100..=117);
        for _ in 0..extra {
            if rng.random_bool(0.4) {
                req.push(if rng.random_bool(0.5) { b'<' } else { b'>' });
            } else {
                req.push(rng.random_range(b'a'..=b'z'));
            }
        }
        // Guarantee expansion pressure: at least 26 brackets.
        for i in 0..26 {
            req[6 + i * 3] = b'<';
        }
    } else {
        let extra = rng.random_range(0..=85);
        for _ in 0..extra {
            req.push(rng.random_range(b'a'..=b'z'));
        }
    }
    [
        ("request".to_string(), InputValue::Str(req)),
        (
            "nheaders".to_string(),
            InputValue::Int(rng.random_range(5..=30)),
        ),
    ]
    .into_iter()
    .collect()
}

/// The thttpd benchmark.
pub fn thttpd() -> BenchApp {
    BenchApp::build(
        "thttpd",
        "tiny web server; '<'/'>' expansion in defang() overflows dfstr (CVE-2003-0899)",
        THTTPD_SRC,
        [("nheaders".to_string(), InputValue::Int(2))]
            .into_iter()
            .collect(),
        thttpd_inputs,
    )
}

// ---------------------------------------------------------------------
// Motivating example — paper Figure 2a.
// ---------------------------------------------------------------------

const MOTIVATING_SRC: &str = r#"
// The paper's Figure 2a sample program. The `//...` block the paper
// elides in the x >= 1000 branch is materialized as bookkeeping work so
// the subtree that statistics-guided search trims (Figure 2b, the
// subtree under node 9) actually exists.
global audited: int = 0;

fn audit(step: int) -> int {
    audited = audited + step;
    return audited;
}

fn vul_func(a: int) {
    if (a >= 3) {
        assert(false);
    }
}

fn f1(x: int) {
    if (x >= 1000 || x < 0) {
        let j: int = 0;
        while (j < 6) {
            if (x > 1000 + j) { print(audit(j)); }
            j = j + 1;
        }
        print(x);
    } else {
        let i: int = 0;
        while (i < x) {
            vul_func(i);
            i = i + 1;
        }
        print(i);
    }
}

fn main() {
    let m: int = input_int("sym_m");
    f1(m);
}
"#;

fn motivating_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let m = if want_faulty {
        rng.random_range(4..1000)
    } else {
        // Correct regions: small loop counts, negatives, or >= 1000.
        match rng.random_range(0..3) {
            0 => rng.random_range(0..=3),
            1 => rng.random_range(-100..0),
            _ => rng.random_range(1000..2000),
        }
    };
    [("sym_m".to_string(), InputValue::Int(m))]
        .into_iter()
        .collect()
}

/// The Figure 2a motivating example.
pub fn motivating() -> BenchApp {
    BenchApp::build(
        "motivating",
        "paper Figure 2a: assertion guarded by a loop bound on a symbolic integer",
        MOTIVATING_SRC,
        InputMap::new(),
        motivating_inputs,
    )
}

/// The four paper applications, in Table order.
pub fn all_apps() -> Vec<BenchApp> {
    vec![polymorph(), ctree(), thttpd(), grep()]
}

/// Looks up an application (including `motivating`) by name.
pub fn by_name(name: &str) -> Option<BenchApp> {
    match name {
        "polymorph" => Some(polymorph()),
        "ctree" => Some(ctree()),
        "grep" => Some(grep()),
        "thttpd" => Some(thttpd()),
        "motivating" => Some(motivating()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concrete::{Vm, VmConfig};
    use rand::SeedableRng;

    fn check_app_verdicts(app: &BenchApp) {
        let vm = Vm::new(&app.module, VmConfig::default());
        let mut rng = StdRng::seed_from_u64(1234);
        let mut faulty_ok = 0;
        let mut correct_ok = 0;
        for i in 0..40 {
            let want_faulty = i % 2 == 0;
            let inputs = (app.gen_inputs)(&mut rng, want_faulty);
            let run = vm.run(&inputs).unwrap();
            if want_faulty && run.outcome.is_fault() {
                faulty_ok += 1;
            }
            if !want_faulty && run.outcome.is_success() {
                correct_ok += 1;
            }
        }
        // The generators are biased, not exact; require a strong majority.
        assert!(faulty_ok >= 18, "{}: only {faulty_ok}/20 faulty", app.name);
        assert!(
            correct_ok >= 18,
            "{}: only {correct_ok}/20 correct",
            app.name
        );
    }

    #[test]
    fn polymorph_workload_matches_verdicts() {
        check_app_verdicts(&polymorph());
    }

    #[test]
    fn ctree_workload_matches_verdicts() {
        check_app_verdicts(&ctree());
    }

    #[test]
    fn grep_workload_matches_verdicts() {
        check_app_verdicts(&grep());
    }

    #[test]
    fn thttpd_workload_matches_verdicts() {
        check_app_verdicts(&thttpd());
    }

    #[test]
    fn motivating_workload_matches_verdicts() {
        check_app_verdicts(&motivating());
    }

    #[test]
    fn fault_functions_match_the_paper() {
        let cases = [
            ("polymorph", "convert_fileName"),
            ("ctree", "initlinedraw"),
            ("grep", "stonesoup_handle_taint"),
            ("thttpd", "defang"),
            ("motivating", "vul_func"),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        for (name, expected_func) in cases {
            let app = by_name(name).unwrap();
            let vm = Vm::new(&app.module, VmConfig::default());
            let inputs = (app.gen_inputs)(&mut rng, true);
            let run = vm.run(&inputs).unwrap();
            let fault = run
                .outcome
                .fault()
                .unwrap_or_else(|| panic!("{name}: no fault"));
            assert_eq!(fault.func, expected_func, "{name}");
        }
    }

    #[test]
    fn sloc_ordering_mirrors_table_i() {
        // Paper Table I: polymorph (506) < CTree (3011) < Grep (6660) <
        // thttpd (7939). Our scaled programs preserve polymorph as the
        // smallest; the server (thttpd) and grep are the largest.
        let p = polymorph().stats().sloc;
        let c = ctree().stats().sloc;
        let g = grep().stats().sloc;
        let t = thttpd().stats().sloc;
        assert!(p < c, "polymorph {p} < ctree {c}");
        assert!(p < g && p < t);
        assert!(g > c && t > c);
    }

    #[test]
    fn registry_is_complete() {
        assert_eq!(all_apps().len(), 4);
        assert!(by_name("nope").is_none());
        for app in all_apps() {
            assert!(!app.description.is_empty());
            assert!(app.stats().functions >= 4);
        }
    }
}
