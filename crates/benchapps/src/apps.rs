//! The benchmark applications and their input-distribution models.

use concrete::{InputMap, InputValue};
use minic::{program_stats, Program, ProgramStats};
use rand::rngs::StdRng;
use rand::RngExt;
use sir::Module;

/// One benchmark application: MiniC source, lowered module, the inputs
/// pinned concrete during symbolic execution (the paper's "semantically
/// reasonable program input options", §VII-A), and a random input
/// generator emulating user behavior.
pub struct BenchApp {
    /// Short name (`polymorph`, `ctree`, `grep`, `thttpd`, `motivating`).
    pub name: &'static str,
    /// One-line description of program and vulnerability.
    pub description: &'static str,
    /// MiniC source text.
    pub source: &'static str,
    /// Parsed program.
    pub program: Program,
    /// Lowered SIR module.
    pub module: Module,
    /// Option-like inputs pinned concrete for symbolic execution (both
    /// the pure baseline and StatSym receive the same pins).
    pub pins: InputMap,
    /// Generates one random input set; `want_faulty` biases toward the
    /// vulnerability-triggering region.
    pub gen_inputs: fn(&mut StdRng, bool) -> InputMap,
}

impl BenchApp {
    fn build(
        name: &'static str,
        description: &'static str,
        source: &'static str,
        pins: InputMap,
        gen_inputs: fn(&mut StdRng, bool) -> InputMap,
    ) -> BenchApp {
        let program = minic::parse_program(source)
            .unwrap_or_else(|e| panic!("benchmark `{name}` does not parse: {e}"));
        let module = sir::lower(&program)
            .unwrap_or_else(|e| panic!("benchmark `{name}` does not lower: {e}"));
        sir::verify(&module).unwrap_or_else(|e| panic!("benchmark `{name}` invalid SIR: {e}"));
        BenchApp {
            name,
            description,
            source,
            program,
            module,
            pins,
            gen_inputs,
        }
    }

    /// Table I program statistics for this application.
    pub fn stats(&self) -> ProgramStats {
        program_stats(&self.program)
    }
}

fn rand_name(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(b'a'..=b'z')).collect()
}

// ---------------------------------------------------------------------
// polymorph — BugBench file-name conversion utility.
// Vulnerability: unchecked copy of the user-provided file name into the
// fixed `newName` stack buffer in convert_fileName() (512 bytes in the
// original, scaled to 12 here). Fault triggers for names of length >= 12.
// ---------------------------------------------------------------------

const POLYMORPH_SRC: &str = r#"
// polymorph: converts file names to lowercase ("unixize") — BugBench.
global track: int = 0;
global clean: int = 0;
global hidden: int = 0;
global hidden_file: int = 0;
global init_file: int = 0;
global wd: str = "/home/user/files";

fn is_fileHidden(suspect: str) -> bool {
    track = track + 1;
    return char_at(suspect, 0) == '.';
}

fn does_nameHaveUppers(suspect: str) -> bool {
    track = track + 1;
    let c: int = char_at(suspect, 0);
    if (c >= 65) {
        if (c <= 90) { return true; }
    }
    return false;
}

fn does_newnameExist(suspect: str) -> bool {
    track = track + 1;
    return char_at(suspect, 0) == 0;
}

fn convert_fileName(original: str) {
    let newName: buf[12];
    let i: int = 0;
    while (char_at(original, i) != 0) {
        let c: int = char_at(original, i);
        if (c >= 97) {
            buf_set(newName, i, c);          // already lowercase
        } else {
            buf_set(newName, i, c + 32);     // tolower
        }
        i = i + 1;
    }
    buf_set(newName, i, 0);                  // NUL: overflows at len >= 12
    clean = clean + 1;
}

fn grok_commandLine(cmd: str) -> int {
    if (char_at(cmd, 0) != '-') { return 0; }
    let opt: int = char_at(cmd, 1);
    if (opt == 'h') { hidden = 1; return 1; }
    if (opt == 'f') { return 2; }
    return 0;
}

fn main() {
    let cmd: str = input_str("opt", 4);
    let target: str = input_str("file", 20);
    let mode: int = grok_commandLine(cmd);
    if (mode == 0) { print(mode); exit(1); }
    init_file = 1;
    if (is_fileHidden(target)) {
        hidden_file = 1;
        if (hidden == 0) { print(hidden_file); exit(0); }
    }
    if (does_nameHaveUppers(target)) { track = track + 1; }
    if (does_newnameExist(target)) { print(track); exit(0); }
    convert_fileName(target);
    print(clean);
}
"#;

fn polymorph_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let opt = if want_faulty || rng.random_bool(0.9) {
        b"-f".to_vec()
    } else if rng.random_bool(0.5) {
        b"-h".to_vec()
    } else {
        b"-x".to_vec() // rejected option: early exit, correct run
    };
    let len = if want_faulty {
        rng.random_range(12..=20)
    } else {
        rng.random_range(1..=11)
    };
    let file = rand_name(rng, len);
    [
        ("opt".to_string(), InputValue::Str(opt)),
        ("file".to_string(), InputValue::Str(file)),
    ]
    .into_iter()
    .collect()
}

/// The polymorph benchmark.
pub fn polymorph() -> BenchApp {
    BenchApp::build(
        "polymorph",
        "file-name conversion utility; stack buffer overrun in convert_fileName (BugBench)",
        POLYMORPH_SRC,
        [("opt".to_string(), InputValue::Str(b"-f".to_vec()))]
            .into_iter()
            .collect(),
        polymorph_inputs,
    )
}

// ---------------------------------------------------------------------
// CTree — STONESOUP directory-tree visualizer.
// Vulnerability: a tainted environment variable copied into the fixed
// `linedraw` stack buffer in initlinedraw() (64 bytes in the original,
// scaled to 16). Fault triggers for taint length >= 16.
// ---------------------------------------------------------------------

const CTREE_SRC: &str = r#"
// ctree: displays the file system hierarchy — STONESOUP test suite.
global lines_drawn: int = 0;
global dirs_seen: int = 0;
global files_seen: int = 0;
global max_depth: int = 0;
global quiet: int = 0;
global draw_ascii: int = 0;

fn parse_options(opts: str) -> int {
    let i: int = 0;
    let ok: int = 1;
    while (char_at(opts, i) != 0) {
        let c: int = char_at(opts, i);
        if (c == 'n') { draw_ascii = 1; }
        else if (c == 'q') { quiet = 1; }
        else { ok = 0; }
        i = i + 1;
    }
    return ok;
}

fn print_entry(name_len: int, depth: int) {
    files_seen = files_seen + 1;
    if (depth > max_depth) { max_depth = depth; }
    lines_drawn = lines_drawn + 1;
    if (quiet == 0) { print(name_len, depth); }
}

fn walk_level(entries: int, depth: int) {
    let i: int = 0;
    while (i < entries) {
        print_entry(i + 3, depth);
        i = i + 1;
    }
    dirs_seen = dirs_seen + 1;
}

fn stonesoup_read_taint() -> str {
    let tainted: str = input_str("stonesoup_env", 24);
    return tainted;
}

fn initlinedraw(drawing: str) {
    let linedraw: buf[16];
    let i: int = 0;
    while (char_at(drawing, i) != 0) {
        let c: int = char_at(drawing, i);
        if (c < 32) { buf_set(linedraw, i, '?'); }
        else if (c > 126) { buf_set(linedraw, i, '#'); }
        else { buf_set(linedraw, i, c); }
        i = i + 1;
        lines_drawn = lines_drawn + 1;
    }
    buf_set(linedraw, i, 0);                 // overflows at len >= 16
}

fn main() {
    let opts: str = input_str("opts", 8);
    let entries: int = input_int("entries");
    if (parse_options(opts) == 0) { print(0); exit(1); }
    let taint: str = stonesoup_read_taint();
    initlinedraw(taint);
    let d: int = 0;
    while (d < 3) {
        walk_level(entries, d);
        d = d + 1;
    }
    print(lines_drawn, dirs_seen, files_seen);
}
"#;

fn ctree_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let opts: Vec<u8> = match rng.random_range(0..3) {
        0 => b"nq".to_vec(),
        1 => b"n".to_vec(),
        _ => b"q".to_vec(),
    };
    let len = if want_faulty {
        rng.random_range(16..=24)
    } else {
        rng.random_range(0..=15)
    };
    let taint = rand_name(rng, len);
    [
        ("opts".to_string(), InputValue::Str(opts)),
        (
            "entries".to_string(),
            InputValue::Int(rng.random_range(1..=8)),
        ),
        ("stonesoup_env".to_string(), InputValue::Str(taint)),
    ]
    .into_iter()
    .collect()
}

/// The CTree benchmark.
pub fn ctree() -> BenchApp {
    BenchApp::build(
        "ctree",
        "directory tree visualizer; tainted env var overflows linedraw buffer in initlinedraw (STONESOUP)",
        CTREE_SRC,
        [
            ("opts".to_string(), InputValue::Str(b"nq".to_vec())),
            ("entries".to_string(), InputValue::Int(2)),
        ]
        .into_iter()
        .collect(),
        ctree_inputs,
    )
}

// ---------------------------------------------------------------------
// Grep — STONESOUP plain-text search.
// Vulnerability: a tainted environment buffer upper-cased into a fixed
// 28-byte stack buffer in stonesoup_handle_taint(). Fault triggers for
// taint length >= 28.
// ---------------------------------------------------------------------

const GREP_SRC: &str = r#"
// grep: command-line plain-text search — STONESOUP test suite.
global lines_matched: int = 0;
global chars_scanned: int = 0;
global invert: int = 0;
global count_only: int = 0;
global taint_len: int = 0;

fn parse_flags(flags: str) {
    let i: int = 0;
    while (char_at(flags, i) != 0) {
        let c: int = char_at(flags, i);
        if (c == 'v') { invert = 1; }
        if (c == 'c') { count_only = 1; }
        i = i + 1;
    }
}

fn match_here(line: str, li: int, pattern: str, pi: int) -> bool {
    if (char_at(pattern, pi) == 0) { return true; }
    if (char_at(line, li) == 0) { return false; }
    chars_scanned = chars_scanned + 1;
    if (char_at(line, li) == char_at(pattern, pi)) {
        return match_here(line, li + 1, pattern, pi + 1);
    }
    return false;
}

fn match_line(line: str, pattern: str) -> bool {
    let i: int = 0;
    while (char_at(line, i) != 0) {
        if (match_here(line, i, pattern, 0)) { return true; }
        i = i + 1;
    }
    return false;
}

fn scan_input(pattern: str, line: str, reps: int) {
    let r: int = 0;
    while (r < reps) {
        let hit: bool = match_line(line, pattern);
        if (hit) {
            if (invert == 0) { lines_matched = lines_matched + 1; }
        } else {
            if (invert == 1) { lines_matched = lines_matched + 1; }
        }
        r = r + 1;
    }
}

fn validate_env(tainted: str) -> int {
    // Reject env values with a leading NUL; depth of validation varies.
    if (char_at(tainted, 0) == 0) { return 0; }
    return 1;
}

fn audit_taint(tainted: str) {
    chars_scanned = chars_scanned + 1;
    print(chars_scanned);
}

fn normalize_env(tainted: str) -> int {
    if (char_at(tainted, 0) >= 'n') { return 1; }
    return 0;
}

fn stonesoup_read_taint() -> str {
    let buff: str = input_str("stonesoup_buffer", 40);
    // Validation helpers run only for some env shapes, so they appear in
    // only part of the trace corpus (detour sources for the analysis).
    if (char_at(buff, 0) >= 'g') {
        if (validate_env(buff) == 1) {
            if (char_at(buff, 1) >= 'p') { audit_taint(buff); }
        }
    }
    if (normalize_env(buff) == 1) {
        if (char_at(buff, 2) >= 't') { audit_taint(buff); }
    }
    return buff;
}

fn stonesoup_handle_taint(buff: str) {
    let stack_buffer: buf[28];
    let i: int = 0;
    while (char_at(buff, i) != 0) {
        let c: int = char_at(buff, i);
        if (c >= 97) {
            buf_set(stack_buffer, i, c - 32); // toupper
        } else {
            buf_set(stack_buffer, i, c);
        }
        i = i + 1;
    }
    buf_set(stack_buffer, i, 0);             // overflows at len >= 28
    taint_len = i;
}

fn main() {
    let flags: str = input_str("flags", 6);
    let pattern: str = input_str("pattern", 8);
    let line1: str = input_str("line1", 24);
    let line2: str = input_str("line2", 24);
    let reps: int = input_int("reps");
    parse_flags(flags);
    scan_input(pattern, line1, reps);
    scan_input(pattern, line2, reps);
    let t: str = stonesoup_read_taint();
    stonesoup_handle_taint(t);
    print(lines_matched, chars_scanned, taint_len);
}
"#;

fn grep_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let flags: Vec<u8> = match rng.random_range(0..3) {
        0 => b"v".to_vec(),
        1 => b"c".to_vec(),
        _ => Vec::new(),
    };
    let pat_len = rng.random_range(1..=3);
    let pattern = rand_name(rng, pat_len);
    let l1 = rng.random_range(10..=24);
    let line1 = rand_name(rng, l1);
    let l2 = rng.random_range(10..=24);
    let line2 = rand_name(rng, l2);
    let len = if want_faulty {
        rng.random_range(28..=40)
    } else {
        rng.random_range(0..=27)
    };
    let taint = rand_name(rng, len);
    [
        ("flags".to_string(), InputValue::Str(flags)),
        ("pattern".to_string(), InputValue::Str(pattern)),
        ("line1".to_string(), InputValue::Str(line1)),
        ("line2".to_string(), InputValue::Str(line2)),
        (
            "reps".to_string(),
            InputValue::Int(rng.random_range(10..=40)),
        ),
        ("stonesoup_buffer".to_string(), InputValue::Str(taint)),
    ]
    .into_iter()
    .collect()
}

/// The Grep benchmark.
pub fn grep() -> BenchApp {
    BenchApp::build(
        "grep",
        "plain-text search; tainted env buffer overflows stack_buffer in stonesoup_handle_taint (STONESOUP)",
        GREP_SRC,
        [
            ("flags".to_string(), InputValue::Str(b"c".to_vec())),
            ("pattern".to_string(), InputValue::Str(b"ab".to_vec())),
            ("line1".to_string(), InputValue::Str(b"zzabzz".to_vec())),
            ("line2".to_string(), InputValue::Str(b"qqqq".to_vec())),
            ("reps".to_string(), InputValue::Int(1)),
        ]
        .into_iter()
        .collect(),
        grep_inputs,
    )
}

// ---------------------------------------------------------------------
// thttpd — defang() buffer overflow (CVE-2003-0899).
// Vulnerability: defang() expands '<' and '>' to "&lt;"/"&gt;" while
// copying the request string into a fixed buffer (scaled to 24 bytes);
// enough brackets overflow it.
// ---------------------------------------------------------------------

const THTTPD_SRC: &str = r#"
// thttpd: tiny HTTP server — defang() overflow, CVE-2003-0899 (v2.25b).
global requests_served: int = 0;
global bytes_out: int = 0;
global status: int = 0;
global port: int = 8080;
global keepalive: int = 0;

fn parse_method(req: str) -> int {
    if (char_at(req, 0) != 'G') { return 0; }
    if (char_at(req, 1) != 'E') { return 0; }
    if (char_at(req, 2) != 'T') { return 0; }
    if (char_at(req, 3) != ' ') { return 0; }
    return 1;
}

fn read_header(idx: int) -> int {
    bytes_out = bytes_out + 8;
    return idx + 1;
}

fn count_headers(n: int) -> int {
    let i: int = 0;
    while (i < n) {
        i = read_header(i);
    }
    return i;
}

fn de_dotdot(path: str) -> int {
    // Reject a leading "/.." (bounded scan, as in the original).
    if (char_at(path, 4) == '/') {
        if (char_at(path, 5) == '.') {
            if (char_at(path, 6) == '.') { return 1; }
        }
    }
    return 0;
}

fn defang(url: str) {
    let dfstr: buf[100];
    let i: int = 0;
    let o: int = 0;
    while (char_at(url, i) != 0) {
        let c: int = char_at(url, i);
        if (c == '<') {
            buf_set(dfstr, o, '&');
            buf_set(dfstr, o + 1, 'l');
            buf_set(dfstr, o + 2, 't');
            buf_set(dfstr, o + 3, ';');
            o = o + 4;
        } else if (c == '>') {
            buf_set(dfstr, o, '&');
            buf_set(dfstr, o + 1, 'g');
            buf_set(dfstr, o + 2, 't');
            buf_set(dfstr, o + 3, ';');
            o = o + 4;
        } else {
            buf_set(dfstr, o, c);
            o = o + 1;
        }
        i = i + 1;
    }
    buf_set(dfstr, o, 0);                    // overflows once o >= 100
    bytes_out = bytes_out + o;
}

fn send_response(code: int) {
    status = code;
    requests_served = requests_served + 1;
}

fn log_referer(req: str) {
    bytes_out = bytes_out + 4;
    print(bytes_out);
}

fn check_auth(req: str) -> int {
    if (char_at(req, 5) >= 'a') { return 1; }
    return 0;
}

fn expand_filename(req: str) -> int {
    if (char_at(req, 5) == '<') { return 1; }
    return 0;
}

fn handle_request(req: str, nheaders: int) {
    if (parse_method(req) == 0) { send_response(400); return; }
    let h: int = count_headers(nheaders);
    if (de_dotdot(req) == 1) { send_response(403); return; }
    // Optional processing stages, taken only for some request shapes
    // (detour sources for the statistical analysis).
    if (nheaders > 15) { log_referer(req); }
    if (check_auth(req) == 1) {
        if (nheaders > 8) { log_referer(req); }
    }
    if (expand_filename(req) == 1) { bytes_out = bytes_out + 1; }
    defang(req);
    send_response(200);
    print(h);
}

fn main() {
    let req: str = input_str("request", 128);
    let nheaders: int = input_int("nheaders");
    handle_request(req, nheaders);
    print(requests_served, bytes_out, status);
}
"#;

fn thttpd_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let mut req = b"GET /".to_vec();
    if want_faulty {
        // Long request with enough angle brackets that the "&lt;"/"&gt;"
        // expansion overflows defang's 100-byte output buffer.
        let extra = rng.random_range(100..=117);
        for _ in 0..extra {
            if rng.random_bool(0.4) {
                req.push(if rng.random_bool(0.5) { b'<' } else { b'>' });
            } else {
                req.push(rng.random_range(b'a'..=b'z'));
            }
        }
        // Guarantee expansion pressure: at least 26 brackets.
        for i in 0..26 {
            req[6 + i * 3] = b'<';
        }
    } else {
        let extra = rng.random_range(0..=85);
        for _ in 0..extra {
            req.push(rng.random_range(b'a'..=b'z'));
        }
    }
    [
        ("request".to_string(), InputValue::Str(req)),
        (
            "nheaders".to_string(),
            InputValue::Int(rng.random_range(5..=30)),
        ),
    ]
    .into_iter()
    .collect()
}

/// The thttpd benchmark.
pub fn thttpd() -> BenchApp {
    BenchApp::build(
        "thttpd",
        "tiny web server; '<'/'>' expansion in defang() overflows dfstr (CVE-2003-0899)",
        THTTPD_SRC,
        [("nheaders".to_string(), InputValue::Int(2))]
            .into_iter()
            .collect(),
        thttpd_inputs,
    )
}

// ---------------------------------------------------------------------
// Motivating example — paper Figure 2a.
// ---------------------------------------------------------------------

const MOTIVATING_SRC: &str = r#"
// The paper's Figure 2a sample program. The `//...` block the paper
// elides in the x >= 1000 branch is materialized as bookkeeping work so
// the subtree that statistics-guided search trims (Figure 2b, the
// subtree under node 9) actually exists.
global audited: int = 0;

fn audit(step: int) -> int {
    audited = audited + step;
    return audited;
}

fn vul_func(a: int) {
    if (a >= 3) {
        assert(false);
    }
}

fn f1(x: int) {
    if (x >= 1000 || x < 0) {
        let j: int = 0;
        while (j < 6) {
            if (x > 1000 + j) { print(audit(j)); }
            j = j + 1;
        }
        print(x);
    } else {
        let i: int = 0;
        while (i < x) {
            vul_func(i);
            i = i + 1;
        }
        print(i);
    }
}

fn main() {
    let m: int = input_int("sym_m");
    f1(m);
}
"#;

fn motivating_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let m = if want_faulty {
        rng.random_range(4..1000)
    } else {
        // Correct regions: small loop counts, negatives, or >= 1000.
        match rng.random_range(0..3) {
            0 => rng.random_range(0..=3),
            1 => rng.random_range(-100..0),
            _ => rng.random_range(1000..2000),
        }
    };
    [("sym_m".to_string(), InputValue::Int(m))]
        .into_iter()
        .collect()
}

/// The Figure 2a motivating example.
pub fn motivating() -> BenchApp {
    BenchApp::build(
        "motivating",
        "paper Figure 2a: assertion guarded by a loop bound on a symbolic integer",
        MOTIVATING_SRC,
        InputMap::new(),
        motivating_inputs,
    )
}

// ---------------------------------------------------------------------
// http_header — HTTP/1.1 request-header field parser (RFC 7230 shape).
// Vulnerability: store_value() copies the field value into an 8-byte
// heap buffer with a correct copy bound, then writes the NUL terminator
// unchecked — the classic fencepost once the value fills the buffer.
// ---------------------------------------------------------------------

const HTTP_HEADER_SRC: &str = r#"
// http_header: parses one `name: value` request-header field.
global fields_parsed: int = 0;
global value_bytes: int = 0;
global rejected: int = 0;

fn is_tchar(c: int) -> bool {
    if (c >= 'a') { if (c <= 'z') { return true; } }
    if (c >= '0') { if (c <= '9') { return true; } }
    if (c == '-') { return true; }
    return false;
}

fn find_colon(line: str) -> int {
    let i: int = 0;
    while (char_at(line, i) != 0) {
        if (char_at(line, i) == ':') { return i; }
        if (is_tchar(char_at(line, i))) { i = i + 1; }
        else { return 0 - 1; }
    }
    return 0 - 1;
}

fn store_value(line: str, start: int) {
    let v: buf = alloc(8);
    let o: int = 0;
    while (char_at(line, start + o) != 0 && o < buf_cap(v)) {
        buf_set(v, o, char_at(line, start + o));
        o = o + 1;
    }
    buf_set(v, o, 0);        // o == cap for an 8-byte value: off-by-one
    value_bytes = value_bytes + o;
    free(v);
}

fn main() {
    let line: str = input_str("header", 20);
    let colon: int = find_colon(line);
    if (colon < 1) { rejected = rejected + 1; print(rejected); exit(1); }
    store_value(line, colon + 1);
    fields_parsed = fields_parsed + 1;
    print(fields_parsed, value_bytes);
}
"#;

fn http_header_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let nlen = rng.random_range(2..=4usize);
    let mut line = rand_name(rng, nlen);
    line.push(b':');
    let vlen = if want_faulty {
        rng.random_range(8..=15)
    } else {
        rng.random_range(0..=7)
    };
    line.extend(rand_name(rng, vlen));
    [("header".to_string(), InputValue::Str(line))]
        .into_iter()
        .collect()
}

/// The HTTP header-field parser benchmark.
pub fn http_header() -> BenchApp {
    BenchApp::build(
        "http_header",
        "request-header field parser; unchecked NUL terminator write in store_value (off-by-one)",
        HTTP_HEADER_SRC,
        InputMap::new(),
        http_header_inputs,
    )
}

// ---------------------------------------------------------------------
// http_chunked — HTTP/1.1 chunked transfer-encoding reader.
// Vulnerability: the declared hex chunk size is multiplied by a spill
// factor before allocation; two attacker hex digits escape the
// allocator's [0, MAX_ALLOC] window (integer scaling feeding malloc).
// ---------------------------------------------------------------------

const HTTP_CHUNKED_SRC: &str = r#"
// http_chunked: reads one chunk of a chunked transfer-encoded body.
global chunks: int = 0;
global body_bytes: int = 0;
global bad_requests: int = 0;

fn hex_val(c: int) -> int {
    if (c >= '0') { if (c <= '9') { return c - '0'; } }
    if (c >= 'a') { if (c <= 'f') { return c - 'a' + 10; } }
    return 0 - 1;
}

fn parse_size(hdr: str) -> int {
    let d0: int = hex_val(char_at(hdr, 0));
    if (d0 < 0) { return 0 - 1; }
    let d1: int = hex_val(char_at(hdr, 1));
    if (d1 < 0) { return d0; }
    return d0 * 16 + d1;
}

fn read_chunk(size: int) {
    let body: buf = alloc(size * 32);   // declared size times spill factor
    if (buf_cap(body) > 0) {
        buf_set(body, 0, '.');
        buf_set(body, buf_cap(body) - 1, 0);
    }
    body_bytes = body_bytes + buf_cap(body);
    free(body);
    chunks = chunks + 1;
}

fn main() {
    let hdr: str = input_str("chunk_hdr", 4);
    let size: int = parse_size(hdr);
    if (size < 0) { bad_requests = bad_requests + 1; print(bad_requests); exit(1); }
    read_chunk(size);
    print(chunks, body_bytes);
}
"#;

fn http_chunked_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    // 32 * size escapes MAX_ALLOC (4096) once size >= 129 (0x81).
    let size = if want_faulty {
        rng.random_range(129..=255u32)
    } else {
        rng.random_range(0..=128u32)
    };
    let hdr = format!("{size:x}").into_bytes();
    [("chunk_hdr".to_string(), InputValue::Str(hdr))]
        .into_iter()
        .collect()
}

/// The chunked-encoding reader benchmark.
pub fn http_chunked() -> BenchApp {
    BenchApp::build(
        "http_chunked",
        "chunked transfer-encoding reader; scaled chunk size overflows the allocator in read_chunk",
        HTTP_CHUNKED_SRC,
        InputMap::new(),
        http_chunked_inputs,
    )
}

// ---------------------------------------------------------------------
// urldecode — percent-escape decoder for query strings.
// Vulnerability: the invalid-escape error path frees the output buffer
// early but keeps decoding into it — use-after-free (and a double free
// when two bad escapes occur back to back).
// ---------------------------------------------------------------------

const URLDECODE_SRC: &str = r#"
// urldecode: decodes %XX escapes in a query string.
global decoded: int = 0;
global errors: int = 0;

fn hex_val(c: int) -> int {
    if (c >= '0') { if (c <= '9') { return c - '0'; } }
    if (c >= 'a') { if (c <= 'f') { return c - 'a' + 10; } }
    return 0 - 1;
}

fn decode(qs: str) {
    let out: buf = alloc(24);
    let i: int = 0;
    let o: int = 0;
    let err: int = 0;
    while (char_at(qs, i) != 0) {
        let c: int = char_at(qs, i);
        if (c == '%') {
            let h: int = hex_val(char_at(qs, i + 1));
            if (h < 0) {
                errors = errors + 1;
                free(out);           // error path releases the buffer early
                err = 1;
            } else {
                let l: int = hex_val(char_at(qs, i + 2));
                if (l < 0) {
                    errors = errors + 1;
                    free(out);
                    err = 1;
                } else {
                    buf_set(out, o, h * 16 + l);
                    o = o + 1;
                    i = i + 2;
                }
            }
        } else {
            buf_set(out, o, c);      // use-after-free once an error path ran
            o = o + 1;
        }
        i = i + 1;
    }
    buf_set(out, o, 0);
    decoded = decoded + o;
    if (err == 0) { free(out); }
}

fn main() {
    let qs: str = input_str("query", 12);
    decode(qs);
    print(decoded, errors);
}
"#;

fn urldecode_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let qlen = rng.random_range(1..=6);
    let mut qs = rand_name(rng, qlen);
    if want_faulty {
        // An invalid escape: `%` followed by a non-hex byte (or nothing).
        qs.push(b'%');
        if rng.random_bool(0.7) {
            qs.push(rng.random_range(b'g'..=b'z'));
        }
    } else if rng.random_bool(0.4) {
        // A valid escape keeps the decoder honest on correct runs.
        qs.push(b'%');
        qs.push(rng.random_range(b'0'..=b'9'));
        qs.push(rng.random_range(b'0'..=b'9'));
    }
    [("query".to_string(), InputValue::Str(qs))]
        .into_iter()
        .collect()
}

/// The URL percent-decoder benchmark.
pub fn urldecode() -> BenchApp {
    BenchApp::build(
        "urldecode",
        "query-string percent-decoder; invalid-escape path frees the output buffer early (UAF)",
        URLDECODE_SRC,
        InputMap::new(),
        urldecode_inputs,
    )
}

// ---------------------------------------------------------------------
// base64 — RFC 4648 alphabet validator with an error logger.
// Vulnerability: rejected payloads are logged raw through the format()
// sink, so a `%` byte in attacker data reaches the formatter.
// ---------------------------------------------------------------------

const BASE64_SRC: &str = r#"
// base64: validates and decodes a base64 payload.
global decoded_bytes: int = 0;
global errors: int = 0;

fn b64_val(c: int) -> int {
    if (c >= 'A') { if (c <= 'Z') { return c - 'A'; } }
    if (c >= 'a') { if (c <= 'z') { return c - 'a' + 26; } }
    if (c >= '0') { if (c <= '9') { return c - '0' + 52; } }
    if (c == '+') { return 62; }
    if (c == '/') { return 63; }
    return 0 - 1;
}

fn log_reject(raw: str) {
    errors = errors + 1;
    format(raw);             // untrusted bytes straight into the log sink
}

fn decode(data: str) {
    let acc: int = 0;
    let bits: int = 0;
    let i: int = 0;
    while (char_at(data, i) != 0) {
        let v: int = b64_val(char_at(data, i));
        if (v < 0) {
            log_reject(data);
            exit(1);
        }
        acc = acc * 64 + v;
        bits = bits + 6;
        if (bits >= 8) {
            decoded_bytes = decoded_bytes + 1;
            bits = bits - 8;
            acc = 0;
        }
        i = i + 1;
    }
}

fn main() {
    let data: str = input_str("data", 6);
    decode(data);
    print(decoded_bytes, errors);
}
"#;

fn base64_inputs(rng: &mut StdRng, want_faulty: bool) -> InputMap {
    let dlen = rng.random_range(1..=5);
    let mut data = rand_name(rng, dlen);
    if want_faulty {
        // A `%` is both outside the alphabet (reaching the log sink) and
        // the byte the formatter trips on.
        let pos = rng.random_range(0..=data.len());
        data.insert(pos, b'%');
    } else if rng.random_bool(0.25) {
        // Rejected but %-free payloads exercise the sink without fault.
        data.push(b'!');
    }
    [("data".to_string(), InputValue::Str(data))]
        .into_iter()
        .collect()
}

/// The base64 validator benchmark.
pub fn base64() -> BenchApp {
    BenchApp::build(
        "base64",
        "base64 payload validator; rejected input logged raw through format() (format string)",
        BASE64_SRC,
        InputMap::new(),
        base64_inputs,
    )
}

/// The four paper applications, in Table order.
pub fn all_apps() -> Vec<BenchApp> {
    vec![polymorph(), ctree(), thttpd(), grep()]
}

/// The protocol-parser applications exercising the heap-model fault
/// families (off-by-one, alloc overflow, use-after-free, format string).
pub fn parser_apps() -> Vec<BenchApp> {
    vec![http_header(), http_chunked(), urldecode(), base64()]
}

/// Looks up an application (including `motivating` and the parser
/// family) by name.
pub fn by_name(name: &str) -> Option<BenchApp> {
    match name {
        "polymorph" => Some(polymorph()),
        "ctree" => Some(ctree()),
        "grep" => Some(grep()),
        "thttpd" => Some(thttpd()),
        "motivating" => Some(motivating()),
        "http_header" => Some(http_header()),
        "http_chunked" => Some(http_chunked()),
        "urldecode" => Some(urldecode()),
        "base64" => Some(base64()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concrete::{Vm, VmConfig};
    use rand::SeedableRng;

    fn check_app_verdicts(app: &BenchApp) {
        let vm = Vm::new(&app.module, VmConfig::default());
        let mut rng = StdRng::seed_from_u64(1234);
        let mut faulty_ok = 0;
        let mut correct_ok = 0;
        for i in 0..40 {
            let want_faulty = i % 2 == 0;
            let inputs = (app.gen_inputs)(&mut rng, want_faulty);
            let run = vm.run(&inputs).unwrap();
            if want_faulty && run.outcome.is_fault() {
                faulty_ok += 1;
            }
            if !want_faulty && run.outcome.is_success() {
                correct_ok += 1;
            }
        }
        // The generators are biased, not exact; require a strong majority.
        assert!(faulty_ok >= 18, "{}: only {faulty_ok}/20 faulty", app.name);
        assert!(
            correct_ok >= 18,
            "{}: only {correct_ok}/20 correct",
            app.name
        );
    }

    #[test]
    fn polymorph_workload_matches_verdicts() {
        check_app_verdicts(&polymorph());
    }

    #[test]
    fn ctree_workload_matches_verdicts() {
        check_app_verdicts(&ctree());
    }

    #[test]
    fn grep_workload_matches_verdicts() {
        check_app_verdicts(&grep());
    }

    #[test]
    fn thttpd_workload_matches_verdicts() {
        check_app_verdicts(&thttpd());
    }

    #[test]
    fn motivating_workload_matches_verdicts() {
        check_app_verdicts(&motivating());
    }

    #[test]
    fn http_header_workload_matches_verdicts() {
        check_app_verdicts(&http_header());
    }

    #[test]
    fn http_chunked_workload_matches_verdicts() {
        check_app_verdicts(&http_chunked());
    }

    #[test]
    fn urldecode_workload_matches_verdicts() {
        check_app_verdicts(&urldecode());
    }

    #[test]
    fn base64_workload_matches_verdicts() {
        check_app_verdicts(&base64());
    }

    #[test]
    fn parser_faults_carry_the_new_fault_classes() {
        use concrete::FaultKind;
        type KindCheck = fn(&FaultKind) -> bool;
        let cases: [(&str, KindCheck); 4] = [
            ("http_header", |k| {
                matches!(k, FaultKind::OffByOne { cap: 8 })
            }),
            (
                "http_chunked",
                |k| matches!(k, FaultKind::AllocOverflow { req } if *req > concrete::MAX_ALLOC),
            ),
            ("urldecode", |k| matches!(k, FaultKind::UseAfterFree)),
            ("base64", |k| matches!(k, FaultKind::FormatString { .. })),
        ];
        let mut rng = StdRng::seed_from_u64(42);
        for (name, matches_kind) in cases {
            let app = by_name(name).unwrap();
            let vm = Vm::new(&app.module, VmConfig::default());
            for _ in 0..10 {
                let inputs = (app.gen_inputs)(&mut rng, true);
                let run = vm.run(&inputs).unwrap();
                let fault = run
                    .outcome
                    .fault()
                    .unwrap_or_else(|| panic!("{name}: no fault"));
                assert!(matches_kind(&fault.kind), "{name}: {:?}", fault.kind);
            }
        }
    }

    #[test]
    fn fault_functions_match_the_paper() {
        let cases = [
            ("polymorph", "convert_fileName"),
            ("ctree", "initlinedraw"),
            ("grep", "stonesoup_handle_taint"),
            ("thttpd", "defang"),
            ("motivating", "vul_func"),
            ("http_header", "store_value"),
            ("http_chunked", "read_chunk"),
            ("urldecode", "decode"),
            ("base64", "log_reject"),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        for (name, expected_func) in cases {
            let app = by_name(name).unwrap();
            let vm = Vm::new(&app.module, VmConfig::default());
            let inputs = (app.gen_inputs)(&mut rng, true);
            let run = vm.run(&inputs).unwrap();
            let fault = run
                .outcome
                .fault()
                .unwrap_or_else(|| panic!("{name}: no fault"));
            assert_eq!(fault.func, expected_func, "{name}");
        }
    }

    #[test]
    fn sloc_ordering_mirrors_table_i() {
        // Paper Table I: polymorph (506) < CTree (3011) < Grep (6660) <
        // thttpd (7939). Our scaled programs preserve polymorph as the
        // smallest; the server (thttpd) and grep are the largest.
        let p = polymorph().stats().sloc;
        let c = ctree().stats().sloc;
        let g = grep().stats().sloc;
        let t = thttpd().stats().sloc;
        assert!(p < c, "polymorph {p} < ctree {c}");
        assert!(p < g && p < t);
        assert!(g > c && t > c);
    }

    #[test]
    fn registry_is_complete() {
        assert_eq!(all_apps().len(), 4);
        assert_eq!(parser_apps().len(), 4);
        assert!(by_name("nope").is_none());
        for app in all_apps() {
            assert!(!app.description.is_empty());
            assert!(app.stats().functions >= 4);
        }
        for app in parser_apps() {
            assert!(by_name(app.name).is_some(), "{} not in by_name", app.name);
            assert!(!app.description.is_empty());
            assert!(app.stats().functions >= 3);
        }
    }
}
