//! Log-corpus generation: emulates the paper's collection of correct
//! and faulty execution logs from randomly generated inputs (§VII-A).

use crate::apps::BenchApp;
use concrete::{run_logged_traced, ExecutionLog, Verdict, VmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use statsym_telemetry::{Recorder, NOOP};

/// How many logs to collect and how they are sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Number of correct-execution logs (the paper uses 100).
    pub n_correct: usize,
    /// Number of faulty-execution logs (the paper uses 100).
    pub n_faulty: usize,
    /// Per-record sampling rate of the program monitor.
    pub sampling_rate: f64,
    /// RNG seed for input generation and sampling.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            n_correct: 100,
            n_faulty: 100,
            sampling_rate: 0.3,
            seed: 2017,
        }
    }
}

/// Runs `app` under the program monitor until the requested numbers of
/// correct and faulty logs are collected.
///
/// # Panics
///
/// Panics if the app's input generator cannot produce the requested run
/// mix within a generous attempt budget (a bug in the workload model,
/// caught by `benchapps` tests).
pub fn generate_corpus(app: &BenchApp, spec: CorpusSpec) -> Vec<ExecutionLog> {
    generate_corpus_traced(app, spec, &NOOP)
}

/// Like [`generate_corpus`] with a telemetry recorder: the monitor's
/// sampled/dropped record counts accumulate across all runs.
///
/// # Panics
///
/// Panics under the same conditions as [`generate_corpus`].
pub fn generate_corpus_traced(
    app: &BenchApp,
    spec: CorpusSpec,
    rec: &dyn Recorder,
) -> Vec<ExecutionLog> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut logs = Vec::with_capacity(spec.n_correct + spec.n_faulty);
    let mut n_correct = 0;
    let mut n_faulty = 0;
    let mut attempt: u64 = 0;
    let max_attempts = ((spec.n_correct + spec.n_faulty) as u64) * 50 + 1000;

    while n_correct < spec.n_correct || n_faulty < spec.n_faulty {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "workload for `{}` cannot reach {}+{} runs",
            app.name,
            spec.n_correct,
            spec.n_faulty
        );
        let want_faulty =
            n_faulty < spec.n_faulty && (n_correct >= spec.n_correct || attempt.is_multiple_of(2));
        let inputs = (app.gen_inputs)(&mut rng, want_faulty);
        let run = run_logged_traced(
            &app.module,
            &inputs,
            spec.sampling_rate,
            spec.seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            VmConfig::default(),
            rec,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", app.name));
        match run.log.verdict {
            Verdict::Correct if n_correct < spec.n_correct => {
                n_correct += 1;
                logs.push(run.log);
            }
            Verdict::Faulty if n_faulty < spec.n_faulty => {
                n_faulty += 1;
                logs.push(run.log);
            }
            _ => {}
        }
    }
    logs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn generates_requested_mix() {
        let app = apps::polymorph();
        let spec = CorpusSpec {
            n_correct: 10,
            n_faulty: 10,
            sampling_rate: 1.0,
            seed: 5,
        };
        let logs = generate_corpus(&app, spec);
        assert_eq!(logs.len(), 20);
        assert_eq!(logs.iter().filter(|l| l.is_faulty()).count(), 10);
    }

    #[test]
    fn partial_sampling_thins_records() {
        let app = apps::ctree();
        let full = generate_corpus(
            &app,
            CorpusSpec {
                n_correct: 5,
                n_faulty: 5,
                sampling_rate: 1.0,
                seed: 9,
            },
        );
        let partial = generate_corpus(
            &app,
            CorpusSpec {
                n_correct: 5,
                n_faulty: 5,
                sampling_rate: 0.3,
                seed: 9,
            },
        );
        let count = |logs: &[ExecutionLog]| logs.iter().map(|l| l.records.len()).sum::<usize>();
        assert!(count(&partial) < count(&full));
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let app = apps::thttpd();
        let spec = CorpusSpec {
            n_correct: 5,
            n_faulty: 5,
            sampling_rate: 0.5,
            seed: 33,
        };
        let a = generate_corpus(&app, spec);
        let b = generate_corpus(&app, spec);
        assert_eq!(a, b);
    }

    #[test]
    fn log_volume_ordering_matches_analysis_cost_shape() {
        // The paper's Table II/III: grep has the largest logs (statistical
        // analysis dominates), polymorph the smallest.
        let spec = CorpusSpec {
            n_correct: 10,
            n_faulty: 10,
            sampling_rate: 1.0,
            seed: 11,
        };
        let vol = |app: &BenchApp| {
            generate_corpus(app, spec)
                .iter()
                .map(|l| l.records.len())
                .sum::<usize>()
        };
        let p = vol(&apps::polymorph());
        let g = vol(&apps::grep());
        let c = vol(&apps::ctree());
        let t = vol(&apps::thttpd());
        assert!(g > t && t > p, "grep {g} > thttpd {t} > polymorph {p}");
        assert!(g > c, "grep {g} > ctree {c}");
    }
}
