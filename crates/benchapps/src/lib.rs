//! The paper's four evaluation targets — polymorph, CTree, Grep, and
//! thttpd — re-implemented in MiniC, plus the motivating example of
//! Figure 2a.
//!
//! # Substitution note (see DESIGN.md)
//!
//! The original programs are real C applications (506–7,939 SLOC). Each
//! re-implementation preserves the properties the paper's evaluation
//! depends on, at a scale where experiments run in seconds rather than
//! hours:
//!
//! * the *documented vulnerability* and its fault/failure structure
//!   (stack-buffer overflow reached through an unchecked copy/expansion
//!   loop over an attacker-controlled string);
//! * the *call-graph shape* between program entry and the fault point
//!   (option parsing, helper predicates, noise loops);
//! * the *path-explosion profile*: per-character branching inside the
//!   vulnerable loop makes pure symbolic execution exponential in the
//!   buffer size, while the statistical length predicate collapses it.
//!
//! Buffer capacities are scaled down (512 → 12 for polymorph, 64 → 16
//! for CTree, ...) so that the *paper's qualitative outcome* is
//! preserved under a proportionally scaled memory budget: pure symbolic
//! execution succeeds (slowly) only on polymorph and exhausts memory on
//! the other three, while StatSym finds every vulnerability.
//!
//! # Example
//!
//! ```
//! let app = benchapps::polymorph();
//! assert_eq!(app.name, "polymorph");
//! let stats = app.stats();
//! assert!(stats.sloc > 40);
//! ```

pub mod apps;
pub mod corpus;

pub use apps::{
    all_apps, base64, by_name, ctree, grep, http_chunked, http_header, motivating, parser_apps,
    polymorph, thttpd, urldecode, BenchApp,
};
pub use corpus::{generate_corpus, generate_corpus_traced, CorpusSpec};
