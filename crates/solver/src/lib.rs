//! A from-scratch constraint solver over bounded integer terms.
//!
//! This crate replaces the role STP plays for KLEE in the paper: deciding
//! the satisfiability of path conditions and producing concrete models
//! (test inputs). Path conditions produced by the symbolic executor are
//! conjunctions of *atomic comparisons* over integer terms (MiniC's
//! `&&`/`||` are lowered to control flow), so the solver implements:
//!
//! 1. **Interval (bounds) propagation** — HC4-style revise over the term
//!    DAG until fixpoint, which alone decides the vast majority of the
//!    byte/threshold constraints symbolic string exploration generates;
//! 2. **Backtracking search** — branch on the smallest unfixed domain
//!    with a node budget, for the residual cases;
//! 3. **Model extraction** — a concrete assignment for every variable,
//!    verified by concrete evaluation before being returned.
//!
//! # Example
//!
//! ```
//! use solver::{CmpOp, Constraint, SatResult, Solver, TermCtx};
//!
//! let mut ctx = TermCtx::new();
//! let x = ctx.new_var("x", 0, 255);
//! let five = ctx.int(5);
//! let sum = ctx.add(x, five);
//! let limit = ctx.int(200);
//! // x + 5 >= 200
//! let c = Constraint::new(CmpOp::Le, limit, sum);
//! let mut solver = Solver::default();
//! match solver.check(&ctx, &[c]) {
//!     SatResult::Sat(model) => assert!(model.value_of(x, &ctx).unwrap() >= 195),
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```

pub mod cache;
pub mod interval;
pub mod solve;
pub mod term;

pub use cache::{
    CachedVerdict, LocalVerdictCache, QueryCache, SharedCache, SharedCacheStats, UcAnswer,
    UnsatCache, UnsatCacheStats,
};
pub use interval::Interval;
pub use solve::{Model, SatResult, Solver, SolverConfig, SolverStats};
pub use term::{CmpOp, Constraint, Term, TermCtx, TermId, VarId};
