//! The decision procedure: interval propagation + backtracking search.

use crate::cache::{CachedVerdict, QueryCache, UcAnswer, UnsatCache};
use crate::interval::Interval;
use crate::term::{CmpOp, Constraint, Term, TermCtx, TermId, VarId};
use std::collections::HashMap;
use std::sync::Arc;

/// Resource limits for one `check` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum propagation rounds per fixpoint (defensive bound; real
    /// fixpoints converge much earlier).
    pub max_rounds: usize,
    /// Maximum search-tree nodes before giving up with `Unknown`.
    pub max_nodes: u64,
    /// Constraint-independence slicing: partition each query's conjuncts
    /// into components that share no variables and decide each component
    /// separately (component verdicts and models land in the private
    /// cache, so sibling queries that extend one component reuse the
    /// others for free). Off by default: slicing can decide a query
    /// whose whole-conjunction search would exhaust its node budget, so
    /// enabling it may turn `Unknown` into a definitive verdict and
    /// thereby change exploration against pinned legacy baselines.
    pub slice: bool,
    /// Accumulate `query_us` even when no recorder is attached, so
    /// untraced bench runs still get an executor-vs-solver wall
    /// breakdown. Off by default (the historical behavior: untraced
    /// queries skip the clock reads entirely).
    pub time_queries: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_rounds: 64,
            max_nodes: 50_000,
            slice: false,
            time_queries: false,
        }
    }
}

/// Counters accumulated across `check` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Total queries (including cache hits).
    pub queries: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Queries answered `Unknown`.
    pub unknown: u64,
    /// Queries answered from the private (per-solver) cache.
    pub cache_hits: u64,
    /// Queries answered from the injected shared cache.
    pub shared_hits: u64,
    /// Queries that consulted the shared cache without getting an
    /// answer (no entry, or a `Sat` verdict when a model was required).
    pub shared_misses: u64,
    /// Search nodes explored.
    pub nodes: u64,
    /// HC4 propagation iterations (fixpoint rounds) across all queries.
    pub propagation_rounds: u64,
    /// Backtracks: a search node falling through to its second domain
    /// partition after the first failed.
    pub backtracks: u64,
    /// Wall-clock µs spent inside traced queries. Only accumulates when
    /// a live recorder is attached (untraced runs skip the clock reads
    /// entirely) or [`SolverConfig::time_queries`] is set, and is
    /// inherently nondeterministic — deterministic trace sinks zero it
    /// before it reaches disk; never compare it across runs.
    pub query_us: u64,
    /// Queries that independence slicing split into ≥ 2 components.
    pub indep_queries: u64,
    /// Total components produced across sliced queries.
    pub indep_components: u64,
    /// Sliced components answered from the private cache instead of a
    /// fresh search.
    pub indep_comp_hits: u64,
    /// Unsat-cache hits: a cached unsat core was a subset of the query.
    pub ucache_sub_hits: u64,
    /// Unsat-cache hits: a cached model of a superset query verified
    /// against this query and was served.
    pub ucache_sup_hits: u64,
    /// Superset candidate models that failed verification (the entry
    /// constrained different conjuncts; never served).
    pub ucache_sup_rejects: u64,
    /// Definitive results published to the unsat cache.
    pub ucache_stores: u64,
    /// Unsat-cache lookups that found no usable entry.
    pub ucache_misses: u64,
}

/// A satisfying assignment for the variables that appear in the query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Model {
    values: HashMap<VarId, i64>,
}

impl Model {
    /// The assigned value of `v`, if `v` appeared in the query.
    pub fn get(&self, v: VarId) -> Option<i64> {
        self.values.get(&v).copied()
    }

    /// The assigned value of `v`, falling back to the low end of its
    /// declared domain — the completion used to materialize test inputs.
    pub fn get_or_default(&self, v: VarId, ctx: &TermCtx) -> i64 {
        self.get(v).unwrap_or_else(|| ctx.var_domain(v).lo)
    }

    /// Evaluates `t` under this model (unassigned variables default to
    /// the low end of their domain). Returns `None` only for division or
    /// remainder by zero.
    pub fn value_of(&self, t: TermId, ctx: &TermCtx) -> Option<i64> {
        Some(match ctx.term(t) {
            Term::Const(v) => v,
            Term::Var(v) => self.get_or_default(v, ctx),
            Term::Add(a, b) => self.value_of(a, ctx)?.wrapping_add(self.value_of(b, ctx)?),
            Term::Sub(a, b) => self.value_of(a, ctx)?.wrapping_sub(self.value_of(b, ctx)?),
            Term::Mul(a, b) => self.value_of(a, ctx)?.wrapping_mul(self.value_of(b, ctx)?),
            Term::Div(a, b) => {
                let d = self.value_of(b, ctx)?;
                if d == 0 {
                    return None;
                }
                self.value_of(a, ctx)?.wrapping_div(d)
            }
            Term::Rem(a, b) => {
                let d = self.value_of(b, ctx)?;
                if d == 0 {
                    return None;
                }
                self.value_of(a, ctx)?.wrapping_rem(d)
            }
            Term::Neg(a) => self.value_of(a, ctx)?.wrapping_neg(),
        })
    }

    /// True if every constraint holds under the model.
    pub fn satisfies(&self, ctx: &TermCtx, constraints: &[Constraint]) -> bool {
        constraints.iter().all(
            |c| match (self.value_of(c.lhs, ctx), self.value_of(c.rhs, ctx)) {
                (Some(a), Some(b)) => c.op.concrete(a, b),
                _ => false,
            },
        )
    }
}

/// The answer to a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a verified model.
    Sat(Model),
    /// Provably unsatisfiable.
    Unsat,
    /// Budget exhausted before a decision.
    Unknown,
}

impl SatResult {
    /// True for `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// True for `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

/// The solver, with a per-instance query cache and an optional injected
/// shared verdict cache (see [`crate::cache`]).
///
/// `Clone` duplicates the private cache and stats and shares the
/// injected caches — the work-stealing executor clones the parent
/// task's solver at every fork, so sibling states inherit the path
/// prefix's cached verdicts and every per-task counter stays a pure
/// function of the fork lineage (schedule-independent).
#[derive(Default, Clone)]
pub struct Solver {
    config: SolverConfig,
    stats: SolverStats,
    cache: HashMap<u64, SatResult>,
    shared: Option<Arc<dyn QueryCache + Send + Sync>>,
    ucache: Option<Arc<UnsatCache>>,
    prov: Prov,
}

/// Transient provenance context stamped onto query events (see
/// [`Solver::set_provenance`]). Cloned with the solver at forks, so a
/// child state inherits its parent's context until the executor updates
/// it on the next step.
#[derive(Default, Clone)]
struct Prov {
    enabled: bool,
    sid: u64,
    loc: String,
    rank: u32,
    /// Cache disposition of the most recent `check_inner` answer, one
    /// of [`statsym_telemetry::query_disposition::ALL`].
    last_cache: &'static str,
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .field("cache_len", &self.cache.len())
            .field("shared", &self.shared.is_some())
            .field("ucache", &self.ucache.is_some())
            .finish()
    }
}

impl Solver {
    /// Creates a solver with explicit limits.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            ..Solver::default()
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Clears the query cache (e.g. between unrelated programs).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Injects a shared verdict cache, consulted on private-cache misses
    /// and fed every definitive local result. See [`crate::cache`] for
    /// the soundness rules (model-free verdicts only, never `Unknown`).
    pub fn set_query_cache(&mut self, cache: Arc<dyn QueryCache + Send + Sync>) {
        self.shared = Some(cache);
    }

    /// The injected shared verdict cache, if any (so owners can thread
    /// it into further solvers they spawn).
    pub fn query_cache(&self) -> Option<Arc<dyn QueryCache + Send + Sync>> {
        self.shared.clone()
    }

    /// Injects an unsat-core / counterexample cache, consulted after the
    /// private cache and fed every definitive search result. Contents
    /// are shared across threads and therefore schedule-dependent: a hit
    /// can decide a query whose local search would have returned
    /// `Unknown`, so attach one only on perf runs, never on runs that
    /// must be byte-reproducible. See [`crate::cache::UnsatCache`].
    pub fn set_unsat_cache(&mut self, cache: Arc<UnsatCache>) {
        self.ucache = Some(cache);
    }

    /// The injected unsat cache, if any.
    pub fn unsat_cache(&self) -> Option<Arc<UnsatCache>> {
        self.ucache.clone()
    }

    /// Approximate memory footprint of the cache, in entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Enables solver-query provenance: every traced query emits a
    /// canonical `query` event carrying the originating state id, source
    /// location, candidate `rank`, callsite, verdict, and cache
    /// disposition. Off by default — committed trace baselines predate
    /// the event family, and provenance roughly doubles a solver-heavy
    /// trace's line count.
    pub fn set_provenance(&mut self, rank: u32) {
        self.prov.enabled = true;
        self.prov.rank = rank;
        // Queries issued before the first `set_query_origin` (initial
        // state construction, entry guidance) belong to no instruction.
        if self.prov.loc.is_empty() {
            self.prov.loc.push_str("entry:0");
        }
    }

    /// Updates the originating-state context stamped onto subsequent
    /// query events: the engine-local state id and the `function:line`
    /// source location of the instruction about to run. Cheap when the
    /// location is unchanged (no allocation).
    pub fn set_query_origin(&mut self, sid: u64, loc: &str) {
        self.prov.sid = sid;
        if self.prov.loc != loc {
            self.prov.loc.clear();
            self.prov.loc.push_str(loc);
        }
    }

    /// Decides `constraints` (a conjunction) over `ctx`, producing a
    /// verified model when satisfiable.
    pub fn check(&mut self, ctx: &TermCtx, constraints: &[Constraint]) -> SatResult {
        self.check_traced(ctx, constraints, &statsym_telemetry::NOOP)
    }

    /// Decides satisfiability only: the caller promises not to read the
    /// model out of a `Sat` answer. This unlocks shared-cache `Sat`
    /// verdicts (which are model-free by construction); `Sat` results
    /// answered from the shared cache carry an empty model.
    pub fn check_sat(&mut self, ctx: &TermCtx, constraints: &[Constraint]) -> SatResult {
        self.check_sat_traced(ctx, constraints, &statsym_telemetry::NOOP)
    }

    /// [`Solver::check`] with per-query latency telemetry: the query's
    /// wall-clock time lands in the `solver.query_us` histogram (only
    /// under a wall-clock trace; deterministic traces skip it). Counter
    /// totals are *not* emitted here — callers snapshot [`Solver::stats`]
    /// and emit deltas, which keeps counts exactly reconcilable.
    pub fn check_traced(
        &mut self,
        ctx: &TermCtx,
        constraints: &[Constraint],
        rec: &dyn statsym_telemetry::Recorder,
    ) -> SatResult {
        self.dispatch_traced(ctx, constraints, rec, true, None)
    }

    /// [`Solver::check_sat`] with per-query latency telemetry.
    pub fn check_sat_traced(
        &mut self,
        ctx: &TermCtx,
        constraints: &[Constraint],
        rec: &dyn statsym_telemetry::Recorder,
    ) -> SatResult {
        self.dispatch_traced(ctx, constraints, rec, false, None)
    }

    /// [`Solver::check_traced`] tagged with the callsite issuing the
    /// query. Besides the global latency histogram, the query lands in
    /// the per-site hot-spot profile: `solver.site.<site>.queries` and
    /// `.nodes` counters plus a `.query_us` latency histogram
    /// (wall-clock traces only). `statsym-inspect top` renders these.
    pub fn check_traced_at(
        &mut self,
        ctx: &TermCtx,
        constraints: &[Constraint],
        rec: &dyn statsym_telemetry::Recorder,
        site: &'static str,
    ) -> SatResult {
        self.dispatch_traced(ctx, constraints, rec, true, Some(site))
    }

    /// [`Solver::check_sat_traced`] tagged with the issuing callsite.
    pub fn check_sat_traced_at(
        &mut self,
        ctx: &TermCtx,
        constraints: &[Constraint],
        rec: &dyn statsym_telemetry::Recorder,
        site: &'static str,
    ) -> SatResult {
        self.dispatch_traced(ctx, constraints, rec, false, Some(site))
    }

    fn dispatch_traced(
        &mut self,
        ctx: &TermCtx,
        constraints: &[Constraint],
        rec: &dyn statsym_telemetry::Recorder,
        needs_model: bool,
        site: Option<&'static str>,
    ) -> SatResult {
        if !rec.enabled() {
            if self.config.time_queries {
                let start = std::time::Instant::now();
                let result = self.check_inner(ctx, constraints, needs_model);
                self.stats.query_us += start.elapsed().as_micros() as u64;
                return result;
            }
            return self.check_inner(ctx, constraints, needs_model);
        }
        let nodes_before = self.stats.nodes;
        let start = std::time::Instant::now();
        let result = self.check_inner(ctx, constraints, needs_model);
        let elapsed = start.elapsed();
        self.stats.query_us += elapsed.as_micros() as u64;
        rec.observe_wall(statsym_telemetry::names::SOLVER_QUERY_US, elapsed);
        if self.prov.enabled {
            let verdict = match &result {
                SatResult::Sat(_) => "sat",
                SatResult::Unsat => "unsat",
                SatResult::Unknown => "unknown",
            };
            rec.query(&statsym_telemetry::QueryEvent {
                sid: self.prov.sid,
                loc: &self.prov.loc,
                rank: self.prov.rank,
                site: site.unwrap_or("check"),
                verdict,
                cache: self.prov.last_cache,
                nodes: self.stats.nodes - nodes_before,
                us: elapsed.as_micros() as u64,
            });
        }
        if let Some(site) = site {
            use statsym_telemetry::names::SOLVER_SITE_PREFIX;
            rec.counter_add(&format!("{SOLVER_SITE_PREFIX}{site}.queries"), 1);
            rec.counter_add(
                &format!("{SOLVER_SITE_PREFIX}{site}.nodes"),
                self.stats.nodes - nodes_before,
            );
            rec.observe_wall(&format!("{SOLVER_SITE_PREFIX}{site}.query_us"), elapsed);
        }
        result
    }

    fn check_inner(
        &mut self,
        ctx: &TermCtx,
        constraints: &[Constraint],
        needs_model: bool,
    ) -> SatResult {
        use statsym_telemetry::query_disposition as qd;
        self.stats.queries += 1;
        if constraints.is_empty() {
            self.stats.sat += 1;
            self.prov.last_cache = qd::EMPTY;
            return SatResult::Sat(Model::default());
        }
        let key = ctx.query_fingerprint(constraints);
        if let Some(hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            self.prov.last_cache = qd::PRIVATE;
            match hit {
                SatResult::Sat(_) => self.stats.sat += 1,
                SatResult::Unsat => self.stats.unsat += 1,
                SatResult::Unknown => self.stats.unknown += 1,
            }
            return hit.clone();
        }
        if let Some(uc) = self.ucache.clone() {
            let hashes = sorted_hashes(ctx, constraints);
            match uc.lookup(&hashes) {
                Some(UcAnswer::Unsat) => {
                    // Some cached unsat core is a sub-multiset of this
                    // conjunction: the conjunction is unsat.
                    self.stats.ucache_sub_hits += 1;
                    self.stats.unsat += 1;
                    self.prov.last_cache = qd::UCACHE_SUB;
                    self.cache.insert(key, SatResult::Unsat);
                    return SatResult::Unsat;
                }
                Some(UcAnswer::Sat(model)) => {
                    // A model of a superset query may satisfy this one;
                    // verification is the soundness guard (the entry's
                    // extra conjuncts never relax anything, but its
                    // VarIds may come from another context, so check
                    // concretely before serving).
                    if model.satisfies(ctx, constraints) {
                        self.stats.ucache_sup_hits += 1;
                        self.stats.sat += 1;
                        self.prov.last_cache = qd::UCACHE_SUP;
                        self.cache.insert(key, SatResult::Sat(model.clone()));
                        return SatResult::Sat(model);
                    }
                    self.stats.ucache_sup_rejects += 1;
                }
                None => self.stats.ucache_misses += 1,
            }
        }
        if let Some(shared) = &self.shared {
            match shared.lookup(key) {
                Some(CachedVerdict::Unsat) => {
                    // Unsat carries no model, so it answers every query.
                    // Mirror it into the private cache: repeats become
                    // ordinary private hits, exactly as without sharing.
                    self.stats.shared_hits += 1;
                    self.stats.unsat += 1;
                    self.prov.last_cache = qd::SHARED;
                    self.cache.insert(key, SatResult::Unsat);
                    return SatResult::Unsat;
                }
                Some(CachedVerdict::Sat) if !needs_model => {
                    // Deliberately NOT mirrored into the private cache:
                    // the private cache stores full results, and a later
                    // model-needing call must re-solve, not read an
                    // empty model.
                    self.stats.shared_hits += 1;
                    self.stats.sat += 1;
                    self.prov.last_cache = qd::SHARED;
                    return SatResult::Sat(Model::default());
                }
                // A model is required but the shared cache only has the
                // verdict — solve locally (deterministic, so the model
                // matches what a sequential run would produce).
                Some(CachedVerdict::Sat) | None => self.stats.shared_misses += 1,
            }
        }
        if self.config.slice && constraints.len() > 1 {
            if let Some(result) = self.check_sliced(ctx, constraints, key) {
                self.prov.last_cache = qd::SLICED;
                return result;
            }
        }
        self.prov.last_cache = qd::SEARCH;

        let mut search = Search {
            ctx,
            constraints,
            config: self.config,
            nodes: 0,
            rounds: 0,
            backtracks: 0,
            budget_hit: false,
        };
        let result = search.run();
        self.stats.nodes += search.nodes;
        self.stats.propagation_rounds += search.rounds;
        self.stats.backtracks += search.backtracks;
        match &result {
            SatResult::Sat(_) => self.stats.sat += 1,
            SatResult::Unsat => self.stats.unsat += 1,
            SatResult::Unknown => self.stats.unknown += 1,
        }
        self.cache.insert(key, result.clone());
        if let Some(shared) = &self.shared {
            if let Some(verdict) = CachedVerdict::from_result(&result) {
                shared.publish(key, verdict);
            }
        }
        self.store_ucache(ctx, constraints, &result);
        result
    }

    /// Constraint-independence slicing: partitions the conjuncts into
    /// components that share no variables (union-find over conjunct
    /// indices) and decides each component separately. Returns `None`
    /// when the query is a single component, in which case the caller
    /// falls back to the whole-conjunction search.
    ///
    /// Soundness: components are variable-disjoint, so the conjunction
    /// is satisfiable iff every component is, and the union of the
    /// component models is a model of the whole (each conjunct only
    /// reads variables of its own component). Any unsat component
    /// refutes the whole. An `Unknown` component makes the whole
    /// `Unknown` unless some other component is unsat.
    fn check_sliced(
        &mut self,
        ctx: &TermCtx,
        constraints: &[Constraint],
        key: u64,
    ) -> Option<SatResult> {
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let n = constraints.len();
        let mut parent: Vec<usize> = (0..n).collect();
        let mut owner: HashMap<VarId, usize> = HashMap::new();
        for (i, c) in constraints.iter().enumerate() {
            for t in [c.lhs, c.rhs] {
                for v in ctx.vars_of(t) {
                    match owner.entry(v) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            let a = find(&mut parent, *e.get());
                            let b = find(&mut parent, i);
                            if a != b {
                                parent[b] = a;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(i);
                        }
                    }
                }
            }
        }
        // Components ordered by first conjunct occurrence; conjuncts
        // keep their original relative order within each component —
        // both matter for determinism of stats and fingerprints.
        let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
        let mut components: Vec<Vec<Constraint>> = Vec::new();
        for (i, c) in constraints.iter().enumerate() {
            let root = find(&mut parent, i);
            let slot = *comp_of_root.entry(root).or_insert_with(|| {
                components.push(Vec::new());
                components.len() - 1
            });
            components[slot].push(*c);
        }
        if components.len() < 2 {
            return None;
        }
        self.stats.indep_queries += 1;
        self.stats.indep_components += components.len() as u64;
        let mut merged: HashMap<VarId, i64> = HashMap::new();
        let mut unknown = false;
        for comp in &components {
            match self.solve_component(ctx, comp) {
                SatResult::Unsat => {
                    // The unsat component refutes the whole query. No
                    // whole-query ucache store: the component entry
                    // (already stored, and narrower) subsumes it.
                    self.stats.unsat += 1;
                    self.cache.insert(key, SatResult::Unsat);
                    if let Some(shared) = &self.shared {
                        shared.publish(key, CachedVerdict::Unsat);
                    }
                    return Some(SatResult::Unsat);
                }
                SatResult::Unknown => unknown = true,
                SatResult::Sat(m) => merged.extend(m.values.iter().map(|(v, x)| (*v, *x))),
            }
        }
        if unknown {
            self.stats.unknown += 1;
            self.cache.insert(key, SatResult::Unknown);
            return Some(SatResult::Unknown);
        }
        let model = Model { values: merged };
        debug_assert!(model.satisfies(ctx, constraints));
        self.stats.sat += 1;
        self.cache.insert(key, SatResult::Sat(model.clone()));
        if let Some(shared) = &self.shared {
            shared.publish(key, CachedVerdict::Sat);
        }
        self.store_ucache(ctx, constraints, &SatResult::Sat(model.clone()));
        Some(SatResult::Sat(model))
    }

    /// Decides one variable-disjoint component, going through the
    /// private cache under the component's own fingerprint and feeding
    /// definitive component results to the shared and unsat caches (so
    /// sibling queries that extend one component reuse the others for
    /// free). Per-query verdict counters are NOT touched here — the
    /// enclosing query counts once; only work counters and
    /// `indep_comp_hits` accumulate.
    fn solve_component(&mut self, ctx: &TermCtx, comp: &[Constraint]) -> SatResult {
        let ck = ctx.query_fingerprint(comp);
        if let Some(hit) = self.cache.get(&ck) {
            self.stats.indep_comp_hits += 1;
            return hit.clone();
        }
        let mut search = Search {
            ctx,
            constraints: comp,
            config: self.config,
            nodes: 0,
            rounds: 0,
            backtracks: 0,
            budget_hit: false,
        };
        let result = search.run();
        self.stats.nodes += search.nodes;
        self.stats.propagation_rounds += search.rounds;
        self.stats.backtracks += search.backtracks;
        self.cache.insert(ck, result.clone());
        if let Some(shared) = &self.shared {
            if let Some(verdict) = CachedVerdict::from_result(&result) {
                shared.publish(ck, verdict);
            }
        }
        self.store_ucache(ctx, comp, &result);
        result
    }

    /// Publishes a definitive result to the unsat cache, if attached:
    /// `Unsat` conjunct multisets act as unsat cores, `Sat` ones carry
    /// their model for superset reuse. `Unknown` is never published.
    fn store_ucache(&mut self, ctx: &TermCtx, constraints: &[Constraint], result: &SatResult) {
        let Some(uc) = &self.ucache else { return };
        match result {
            SatResult::Unsat => {
                uc.store_unsat(sorted_hashes(ctx, constraints));
                self.stats.ucache_stores += 1;
            }
            SatResult::Sat(m) => {
                uc.store_sat(sorted_hashes(ctx, constraints), m.clone());
                self.stats.ucache_stores += 1;
            }
            SatResult::Unknown => {}
        }
    }
}

/// Structural hashes of each conjunct, sorted — the multiset key the
/// unsat cache matches on. Structural hashes are context-free, so the
/// multiset is comparable across `TermCtx`s (models are not, which is
/// why sat reuse re-verifies).
fn sorted_hashes(ctx: &TermCtx, constraints: &[Constraint]) -> Vec<u64> {
    let mut v: Vec<u64> = constraints.iter().map(|c| ctx.constraint_hash(c)).collect();
    v.sort_unstable();
    v
}

struct Search<'a> {
    ctx: &'a TermCtx,
    constraints: &'a [Constraint],
    config: SolverConfig,
    nodes: u64,
    rounds: u64,
    backtracks: u64,
    budget_hit: bool,
}

/// Domains are indexed by `VarId`; only variables relevant to the query
/// are tracked.
type Domains = HashMap<VarId, Interval>;

enum PropOutcome {
    Ok,
    Contradiction,
}

impl<'a> Search<'a> {
    fn run(&mut self) -> SatResult {
        let mut domains: Domains = HashMap::new();
        for c in self.constraints {
            for t in [c.lhs, c.rhs] {
                for v in self.ctx.vars_of(t) {
                    domains.entry(v).or_insert_with(|| self.ctx.var_domain(v));
                }
            }
        }
        match self.search(domains) {
            Some(model) => SatResult::Sat(model),
            None if self.budget_hit => SatResult::Unknown,
            None => SatResult::Unsat,
        }
    }

    fn search(&mut self, mut domains: Domains) -> Option<Model> {
        self.nodes += 1;
        if self.nodes > self.config.max_nodes {
            self.budget_hit = true;
            return None;
        }
        if let PropOutcome::Contradiction = self.propagate(&mut domains) {
            return None;
        }
        // Pick the unfixed variable with the smallest domain.
        let branch_var = domains
            .iter()
            .filter(|(_, d)| !d.is_point())
            .min_by_key(|(v, d)| (d.width(), v.0))
            .map(|(v, d)| (*v, *d));
        let Some((var, dom)) = branch_var else {
            // All variables fixed: verify concretely (propagation over
            // div/rem is conservative, so this check is load-bearing).
            let model = Model {
                values: domains.iter().map(|(v, d)| (*v, d.lo)).collect(),
            };
            return model.satisfies(self.ctx, self.constraints).then_some(model);
        };
        // Lo-first splitting: try the smallest value, else the rest of
        // the domain. Complete, and reaches a model in O(#vars) nodes on
        // the byte-constraint chains symbolic string exploration emits.
        for (i, part) in [
            Interval::point(dom.lo),
            Interval::new(dom.lo.saturating_add(1), dom.hi),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                self.backtracks += 1;
            }
            let mut next = domains.clone();
            next.insert(var, part);
            if let Some(m) = self.search(next) {
                return Some(m);
            }
            if self.budget_hit {
                return None;
            }
        }
        None
    }

    /// Revises all constraints until fixpoint (or the round bound).
    fn propagate(&mut self, domains: &mut Domains) -> PropOutcome {
        for _ in 0..self.config.max_rounds {
            self.rounds += 1;
            let mut changed = false;
            for c in self.constraints {
                match self.revise(c, domains) {
                    Ok(ch) => changed |= ch,
                    Err(()) => return PropOutcome::Contradiction,
                }
            }
            if !changed {
                break;
            }
        }
        PropOutcome::Ok
    }

    fn eval(&self, t: TermId, domains: &Domains) -> Interval {
        match self.ctx.term(t) {
            Term::Const(v) => Interval::point(v),
            Term::Var(v) => domains
                .get(&v)
                .copied()
                .unwrap_or_else(|| self.ctx.var_domain(v)),
            Term::Add(a, b) => self.eval(a, domains).add(self.eval(b, domains)),
            Term::Sub(a, b) => self.eval(a, domains).sub(self.eval(b, domains)),
            Term::Mul(a, b) => self.eval(a, domains).mul(self.eval(b, domains)),
            Term::Div(a, b) => self.eval(a, domains).div(self.eval(b, domains)),
            Term::Rem(a, b) => self.eval(a, domains).rem(self.eval(b, domains)),
            Term::Neg(a) => self.eval(a, domains).neg(),
        }
    }

    /// One HC4 revise of a single constraint. `Err(())` = contradiction.
    fn revise(&self, c: &Constraint, domains: &mut Domains) -> Result<bool, ()> {
        let l = self.eval(c.lhs, domains);
        let r = self.eval(c.rhs, domains);
        if l.is_empty() || r.is_empty() {
            return Err(());
        }
        let (l_target, r_target) = match c.op {
            CmpOp::Le => {
                if l.lo > r.hi {
                    return Err(());
                }
                (Interval::new(i64::MIN, r.hi), Interval::new(l.lo, i64::MAX))
            }
            CmpOp::Lt => {
                if l.lo >= r.hi {
                    return Err(());
                }
                (
                    Interval::new(i64::MIN, r.hi.saturating_sub(1)),
                    Interval::new(l.lo.saturating_add(1), i64::MAX),
                )
            }
            CmpOp::Eq => {
                let meet = l.intersect(r);
                if meet.is_empty() {
                    return Err(());
                }
                (meet, meet)
            }
            CmpOp::Ne => {
                if l.is_point() && r.is_point() && l.lo == r.lo {
                    return Err(());
                }
                // Shave an endpoint when the other side is a singleton.
                let mut lt = l;
                let mut rt = r;
                if r.is_point() {
                    if lt.lo == r.lo {
                        lt.lo = lt.lo.saturating_add(1);
                    }
                    if lt.hi == r.lo {
                        lt.hi = lt.hi.saturating_sub(1);
                    }
                    if lt.is_empty() {
                        return Err(());
                    }
                }
                if l.is_point() {
                    if rt.lo == l.lo {
                        rt.lo = rt.lo.saturating_add(1);
                    }
                    if rt.hi == l.lo {
                        rt.hi = rt.hi.saturating_sub(1);
                    }
                    if rt.is_empty() {
                        return Err(());
                    }
                }
                (lt, rt)
            }
        };
        let mut changed = self.narrow(c.lhs, l_target, domains)?;
        changed |= self.narrow(c.rhs, r_target, domains)?;
        Ok(changed)
    }

    /// Backward (HC4) narrowing: force `eval(t) ⊆ target`.
    fn narrow(&self, t: TermId, target: Interval, domains: &mut Domains) -> Result<bool, ()> {
        let cur = self.eval(t, domains);
        let meet = cur.intersect(target);
        if meet.is_empty() {
            return Err(());
        }
        if meet == cur {
            return Ok(false);
        }
        match self.ctx.term(t) {
            Term::Const(_) => Ok(false),
            Term::Var(v) => {
                domains.insert(v, meet);
                Ok(true)
            }
            Term::Add(a, b) => {
                let eb = self.eval(b, domains);
                let mut ch = self.narrow(a, meet.sub(eb), domains)?;
                let ea = self.eval(a, domains);
                ch |= self.narrow(b, meet.sub(ea), domains)?;
                Ok(ch)
            }
            Term::Sub(a, b) => {
                let eb = self.eval(b, domains);
                let mut ch = self.narrow(a, meet.add(eb), domains)?;
                let ea = self.eval(a, domains);
                ch |= self.narrow(b, ea.sub(meet), domains)?;
                Ok(ch)
            }
            Term::Neg(a) => self.narrow(a, meet.neg(), domains),
            Term::Mul(a, b) => {
                let mut ch = false;
                if let Some(cb) = self.ctx.as_const(b) {
                    if cb != 0 {
                        ch |= self.narrow(a, div_range_for_mul(meet, cb), domains)?;
                    }
                }
                if let Some(ca) = self.ctx.as_const(a) {
                    if ca != 0 {
                        ch |= self.narrow(b, div_range_for_mul(meet, ca), domains)?;
                    }
                }
                Ok(ch)
            }
            // Division/remainder: evaluation-only (no backward narrowing);
            // the final concrete verification keeps this sound.
            Term::Div(_, _) | Term::Rem(_, _) => Ok(false),
        }
    }
}

/// The tightest interval `X` such that `x ∈ X ⇒ x * c` may lie in
/// `target` (for constant `c != 0`).
fn div_range_for_mul(target: Interval, c: i64) -> Interval {
    debug_assert!(c != 0);
    let (lo, hi) = if c > 0 {
        (ceil_div(target.lo, c), floor_div(target.hi, c))
    } else {
        (ceil_div(target.hi, c), floor_div(target.lo, c))
    };
    Interval::new(lo, hi)
}

fn floor_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(ctx: &TermCtx, cs: &[Constraint]) -> Model {
        match Solver::default().check(ctx, cs) {
            SatResult::Sat(m) => {
                assert!(m.satisfies(ctx, cs), "returned model must satisfy");
                m
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    fn unsat(ctx: &TermCtx, cs: &[Constraint]) {
        assert_eq!(Solver::default().check(ctx, cs), SatResult::Unsat);
    }

    #[test]
    fn empty_query_is_sat() {
        let ctx = TermCtx::new();
        assert!(Solver::default().check(&ctx, &[]).is_sat());
    }

    #[test]
    fn simple_bounds() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let c100 = ctx.int(100);
        let c200 = ctx.int(200);
        let m = sat(
            &ctx,
            &[
                Constraint::new(CmpOp::Lt, c100, x),
                Constraint::new(CmpOp::Lt, x, c200),
            ],
        );
        let v = m.value_of(x, &ctx).unwrap();
        assert!(v > 100 && v < 200);
    }

    #[test]
    fn contradictory_bounds_unsat() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let c10 = ctx.int(10);
        let c5 = ctx.int(5);
        unsat(
            &ctx,
            &[
                Constraint::new(CmpOp::Lt, x, c5),
                Constraint::new(CmpOp::Lt, c10, x),
            ],
        );
    }

    #[test]
    fn equality_chain_propagates() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 1000);
        let y = ctx.new_var("y", 0, 1000);
        let c7 = ctx.int(7);
        let sum = ctx.add(x, c7);
        let c42 = ctx.int(42);
        let m = sat(
            &ctx,
            &[
                Constraint::new(CmpOp::Eq, sum, c42), // x + 7 == 42
                Constraint::new(CmpOp::Eq, y, x),     // y == x
            ],
        );
        assert_eq!(m.get(var_of(&ctx, x)), Some(35));
        assert_eq!(m.get(var_of(&ctx, y)), Some(35));
    }

    fn var_of(ctx: &TermCtx, t: TermId) -> VarId {
        match ctx.term(t) {
            Term::Var(v) => v,
            _ => panic!("not a var"),
        }
    }

    #[test]
    fn ne_constraints_on_bytes() {
        // Models the strlen pattern: bytes 0..3 nonzero, byte 3 == 0.
        let mut ctx = TermCtx::new();
        let zero = ctx.int(0);
        let bytes: Vec<TermId> = (0..4)
            .map(|i| ctx.new_var(format!("b{i}"), 0, 255))
            .collect();
        let mut cs: Vec<Constraint> = bytes[..3]
            .iter()
            .map(|&b| Constraint::new(CmpOp::Ne, b, zero))
            .collect();
        cs.push(Constraint::new(CmpOp::Eq, bytes[3], zero));
        let m = sat(&ctx, &cs);
        for b in &bytes[..3] {
            assert_ne!(m.value_of(*b, &ctx).unwrap(), 0);
        }
        assert_eq!(m.value_of(bytes[3], &ctx).unwrap(), 0);
    }

    #[test]
    fn multiplication_by_constant_narrows() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 1_000_000);
        let c3 = ctx.int(3);
        let prod = ctx.mul(x, c3);
        let c300 = ctx.int(300);
        let m = sat(&ctx, &[Constraint::new(CmpOp::Eq, prod, c300)]);
        assert_eq!(m.value_of(x, &ctx).unwrap(), 100);
        // 3x == 301 has no integer solution.
        let c301 = ctx.int(301);
        unsat(&ctx, &[Constraint::new(CmpOp::Eq, prod, c301)]);
    }

    #[test]
    fn division_needs_search_but_verifies() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 40);
        let c4 = ctx.int(4);
        let q = ctx.div(x, c4);
        let c7 = ctx.int(7);
        let m = sat(&ctx, &[Constraint::new(CmpOp::Eq, q, c7)]);
        let v = m.value_of(x, &ctx).unwrap();
        assert_eq!(v / 4, 7);
    }

    #[test]
    fn subtraction_with_negatives() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", -100, 100);
        let y = ctx.new_var("y", -100, 100);
        let diff = ctx.sub(x, y);
        let c150 = ctx.int(150);
        let m = sat(&ctx, &[Constraint::new(CmpOp::Eq, diff, c150)]);
        let (vx, vy) = (m.value_of(x, &ctx).unwrap(), m.value_of(y, &ctx).unwrap());
        assert_eq!(vx - vy, 150);
    }

    #[test]
    fn negation_narrowing() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", -50, 50);
        let nx = ctx.neg(x);
        let c30 = ctx.int(30);
        let m = sat(&ctx, &[Constraint::new(CmpOp::Eq, nx, c30)]);
        assert_eq!(m.value_of(x, &ctx).unwrap(), -30);
    }

    #[test]
    fn cache_hits_are_counted() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 9);
        let c5 = ctx.int(5);
        let cs = [Constraint::new(CmpOp::Eq, x, c5)];
        let mut solver = Solver::default();
        solver.check(&ctx, &cs);
        solver.check(&ctx, &cs);
        assert_eq!(solver.stats().cache_hits, 1);
        assert_eq!(solver.stats().queries, 2);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // x * y == large prime-ish over huge domains, with a 1-node budget.
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 2, 1_000_000_000);
        let y = ctx.new_var("y", 2, 1_000_000_000);
        let prod = ctx.mul(x, y);
        let target = ctx.int(999_999_937);
        let mut solver = Solver::with_config(SolverConfig {
            max_nodes: 1,
            ..SolverConfig::default()
        });
        let r = solver.check(&ctx, &[Constraint::new(CmpOp::Eq, prod, target)]);
        assert_eq!(r, SatResult::Unknown);
    }

    #[test]
    fn le_lt_boundaries_exact() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 10);
        let c10 = ctx.int(10);
        // x >= 10 (as 10 <= x) has exactly one solution in [0,10].
        let m = sat(&ctx, &[Constraint::new(CmpOp::Le, c10, x)]);
        assert_eq!(m.value_of(x, &ctx).unwrap(), 10);
        // x > 10 is unsat.
        unsat(&ctx, &[Constraint::new(CmpOp::Lt, c10, x)]);
    }

    #[test]
    fn propagation_rounds_and_backtracks_are_counted() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 40);
        let c4 = ctx.int(4);
        let q = ctx.div(x, c4);
        let c7 = ctx.int(7);
        let mut solver = Solver::default();
        // Division defeats narrowing, forcing the search to enumerate
        // x lo-first: 28 failed first partitions before x == 28 works.
        let r = solver.check(&ctx, &[Constraint::new(CmpOp::Eq, q, c7)]);
        assert!(r.is_sat());
        let stats = solver.stats();
        assert!(stats.propagation_rounds > 0, "{stats:?}");
        assert_eq!(stats.backtracks, 28, "{stats:?}");
        // A pure-propagation query adds rounds but no backtracks.
        let before = solver.stats();
        let c5 = ctx.int(5);
        solver.check(&ctx, &[Constraint::new(CmpOp::Eq, x, c5)]);
        let after = solver.stats();
        assert!(after.propagation_rounds > before.propagation_rounds);
        assert_eq!(after.backtracks, before.backtracks);
    }

    #[test]
    fn check_traced_matches_check() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 9);
        let c5 = ctx.int(5);
        let cs = [Constraint::new(CmpOp::Eq, x, c5)];
        let mut a = Solver::default();
        let mut b = Solver::default();
        let rec = statsym_telemetry::MemRecorder::new(statsym_telemetry::Clock::wall());
        assert_eq!(a.check(&ctx, &cs), b.check_traced(&ctx, &cs, &rec));
        // Identical work counters; only the traced solver accumulates
        // wall-clock query time, so normalize it out.
        assert_eq!(
            a.stats(),
            SolverStats {
                query_us: 0,
                ..b.stats()
            }
        );
        // Wall-clock trace captured the query latency.
        let h = rec
            .metrics()
            .hist(statsym_telemetry::names::SOLVER_QUERY_US)
            .expect("latency histogram present");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn shared_cache_answers_unsat_across_solvers() {
        use crate::cache::SharedCache;
        use std::sync::Arc;
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let c5 = ctx.int(5);
        let c10 = ctx.int(10);
        let cs = [
            Constraint::new(CmpOp::Lt, x, c5),
            Constraint::new(CmpOp::Lt, c10, x),
        ];
        let shared: Arc<SharedCache> = Arc::new(SharedCache::new(4));
        let mut a = Solver::default();
        a.set_query_cache(shared.clone());
        assert_eq!(a.check(&ctx, &cs), SatResult::Unsat);
        assert_eq!(a.stats().shared_misses, 1);

        // A different solver over a *different* context with the same
        // structural constraints answers from the shared cache.
        let mut ctx2 = TermCtx::new();
        let x2 = ctx2.new_var("x", 0, 255);
        let c5b = ctx2.int(5);
        let c10b = ctx2.int(10);
        let cs2 = [
            Constraint::new(CmpOp::Lt, x2, c5b),
            Constraint::new(CmpOp::Lt, c10b, x2),
        ];
        let mut b = Solver::default();
        b.set_query_cache(shared.clone());
        assert_eq!(b.check(&ctx2, &cs2), SatResult::Unsat);
        assert_eq!(b.stats().shared_hits, 1);
        assert_eq!(b.stats().nodes, 0, "no local search on a shared hit");
    }

    #[test]
    fn shared_sat_hit_is_model_free_only() {
        use crate::cache::SharedCache;
        use std::sync::Arc;
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let c5 = ctx.int(5);
        let cs = [Constraint::new(CmpOp::Eq, x, c5)];
        let shared: Arc<SharedCache> = Arc::new(SharedCache::new(1));
        let mut a = Solver::default();
        a.set_query_cache(shared.clone());
        assert!(a.check_sat(&ctx, &cs).is_sat());

        // check_sat on another solver: answered from the shared cache.
        let mut b = Solver::default();
        b.set_query_cache(shared.clone());
        assert!(b.check_sat(&ctx, &cs).is_sat());
        assert_eq!(b.stats().shared_hits, 1);

        // check (model required) must NOT use the shared Sat verdict:
        // it solves locally and returns a real, verified model.
        let mut c = Solver::default();
        c.set_query_cache(shared);
        match c.check(&ctx, &cs) {
            SatResult::Sat(m) => {
                assert!(m.satisfies(&ctx, &cs));
                assert_eq!(m.value_of(x, &ctx), Some(5));
            }
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(c.stats().shared_hits, 0);
        assert_eq!(c.stats().shared_misses, 1);
    }

    #[test]
    fn unknown_results_are_not_shared() {
        use crate::cache::SharedCache;
        use std::sync::Arc;
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 2, 1_000_000_000);
        let y = ctx.new_var("y", 2, 1_000_000_000);
        let prod = ctx.mul(x, y);
        let target = ctx.int(999_999_937);
        let shared: Arc<SharedCache> = Arc::new(SharedCache::new(1));
        let mut solver = Solver::with_config(SolverConfig {
            max_nodes: 1,
            ..SolverConfig::default()
        });
        solver.set_query_cache(shared.clone());
        let r = solver.check(&ctx, &[Constraint::new(CmpOp::Eq, prod, target)]);
        assert_eq!(r, SatResult::Unknown);
        assert_eq!(shared.entries(), 0, "Unknown must not be published");
    }

    #[test]
    fn check_sat_matches_check_verdicts_without_sharing() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 9);
        let c5 = ctx.int(5);
        let c20 = ctx.int(20);
        for cs in [
            vec![Constraint::new(CmpOp::Eq, x, c5)],
            vec![Constraint::new(CmpOp::Eq, x, c20)],
        ] {
            let mut a = Solver::default();
            let mut b = Solver::default();
            assert_eq!(a.check(&ctx, &cs).is_sat(), b.check_sat(&ctx, &cs).is_sat());
            assert_eq!(
                a.check(&ctx, &cs).is_unsat(),
                b.check_sat(&ctx, &cs).is_unsat()
            );
        }
    }

    #[test]
    fn slicing_decides_disjoint_components_and_merges_models() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let y = ctx.new_var("y", 0, 255);
        let c5 = ctx.int(5);
        let c9 = ctx.int(9);
        let cs = [
            Constraint::new(CmpOp::Eq, x, c5),
            Constraint::new(CmpOp::Eq, y, c9),
        ];
        let mut sliced = Solver::with_config(SolverConfig {
            slice: true,
            ..SolverConfig::default()
        });
        match sliced.check(&ctx, &cs) {
            SatResult::Sat(m) => {
                assert!(m.satisfies(&ctx, &cs));
                assert_eq!(m.value_of(x, &ctx), Some(5));
                assert_eq!(m.value_of(y, &ctx), Some(9));
            }
            other => panic!("expected sat, got {other:?}"),
        }
        let s = sliced.stats();
        assert_eq!(s.indep_queries, 1);
        assert_eq!(s.indep_components, 2);
        assert_eq!(s.sat, 1, "the whole query counts once");
        assert_eq!(s.queries, 1);

        // A later query extending one component reuses the other's
        // cached component verdict.
        let c7 = ctx.int(7);
        let cs2 = [
            Constraint::new(CmpOp::Eq, x, c5),
            Constraint::new(CmpOp::Lt, y, c7),
        ];
        sliced.check(&ctx, &cs2);
        assert_eq!(sliced.stats().indep_comp_hits, 1, "{:?}", sliced.stats());
    }

    #[test]
    fn slicing_unsat_component_refutes_whole() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let y = ctx.new_var("y", 0, 255);
        let c5 = ctx.int(5);
        let c10 = ctx.int(10);
        let cs = [
            Constraint::new(CmpOp::Eq, x, c5),
            Constraint::new(CmpOp::Lt, y, c5),
            Constraint::new(CmpOp::Lt, c10, y),
        ];
        let mut sliced = Solver::with_config(SolverConfig {
            slice: true,
            ..SolverConfig::default()
        });
        assert_eq!(sliced.check(&ctx, &cs), SatResult::Unsat);
        let s = sliced.stats();
        assert_eq!(s.indep_queries, 1);
        assert_eq!(s.indep_components, 2);
        assert_eq!(s.unsat, 1);
    }

    #[test]
    fn slicing_matches_unsliced_verdicts() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let y = ctx.new_var("y", 0, 255);
        let z = ctx.new_var("z", -50, 50);
        let c5 = ctx.int(5);
        let c10 = ctx.int(10);
        let sum = ctx.add(x, y);
        let nz = ctx.neg(z);
        let queries: Vec<Vec<Constraint>> = vec![
            vec![
                Constraint::new(CmpOp::Lt, x, c10),
                Constraint::new(CmpOp::Eq, z, c5),
            ],
            vec![
                Constraint::new(CmpOp::Eq, sum, c10),
                Constraint::new(CmpOp::Lt, nz, c5),
            ],
            vec![
                Constraint::new(CmpOp::Lt, x, c5),
                Constraint::new(CmpOp::Lt, c10, x),
                Constraint::new(CmpOp::Eq, y, c5),
            ],
            vec![
                Constraint::new(CmpOp::Ne, x, c5),
                Constraint::new(CmpOp::Ne, y, c10),
                Constraint::new(CmpOp::Eq, z, c5),
            ],
        ];
        for cs in &queries {
            let mut plain = Solver::default();
            let mut sliced = Solver::with_config(SolverConfig {
                slice: true,
                ..SolverConfig::default()
            });
            let a = plain.check(&ctx, cs);
            let b = sliced.check(&ctx, cs);
            assert_eq!(a.is_sat(), b.is_sat(), "{cs:?}");
            assert_eq!(a.is_unsat(), b.is_unsat(), "{cs:?}");
            if let SatResult::Sat(m) = &b {
                assert!(m.satisfies(&ctx, cs), "sliced model must verify: {cs:?}");
            }
        }
    }

    #[test]
    fn ucache_subset_answers_unsat_without_search() {
        use crate::cache::UnsatCache;
        use std::sync::Arc;
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let c5 = ctx.int(5);
        let c10 = ctx.int(10);
        let core = [
            Constraint::new(CmpOp::Lt, x, c5),
            Constraint::new(CmpOp::Lt, c10, x),
        ];
        let uc = Arc::new(UnsatCache::default());
        let mut a = Solver::default();
        a.set_unsat_cache(uc.clone());
        assert_eq!(a.check(&ctx, &core), SatResult::Unsat);
        assert_eq!(a.stats().ucache_stores, 1);

        // A *superset* query on a fresh solver (cold private cache) is
        // answered by subset matching, with zero search nodes.
        let y = ctx.new_var("y", 0, 255);
        let mut wider = core.to_vec();
        wider.push(Constraint::new(CmpOp::Eq, y, c5));
        let mut b = Solver::default();
        b.set_unsat_cache(uc);
        assert_eq!(b.check(&ctx, &wider), SatResult::Unsat);
        assert_eq!(b.stats().ucache_sub_hits, 1);
        assert_eq!(b.stats().nodes, 0, "no local search on a subset hit");
    }

    #[test]
    fn ucache_superset_model_reuse_verifies_before_serving() {
        use crate::cache::UnsatCache;
        use std::sync::Arc;
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let y = ctx.new_var("y", 0, 255);
        let c5 = ctx.int(5);
        let c9 = ctx.int(9);
        let both = [
            Constraint::new(CmpOp::Eq, x, c5),
            Constraint::new(CmpOp::Eq, y, c9),
        ];
        let uc = Arc::new(UnsatCache::default());
        let mut a = Solver::default();
        a.set_unsat_cache(uc.clone());
        assert!(a.check(&ctx, &both).is_sat());

        // The subset query {x == 5} reuses the superset entry's model.
        let sub = [Constraint::new(CmpOp::Eq, x, c5)];
        let mut b = Solver::default();
        b.set_unsat_cache(uc);
        match b.check(&ctx, &sub) {
            SatResult::Sat(m) => {
                assert!(m.satisfies(&ctx, &sub));
                assert_eq!(m.value_of(x, &ctx), Some(5));
            }
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(b.stats().ucache_sup_hits, 1);
        assert_eq!(b.stats().nodes, 0, "no local search on a verified reuse");
    }

    #[test]
    fn ucache_never_serves_unverified_model_across_slices() {
        use crate::cache::UnsatCache;
        use std::sync::Arc;
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 255);
        let c10 = ctx.int(10);
        // Query: 10 <= x.
        let cs = [Constraint::new(CmpOp::Le, c10, x)];
        // Poison the cache with a superset entry whose model violates
        // the query (as if it came from a different conjunct slice or a
        // colliding context): hashes = query's hash + one extra, model
        // assigns x = 3.
        let uc = Arc::new(UnsatCache::default());
        let h = ctx.constraint_hash(&cs[0]);
        let bad = Model {
            values: HashMap::from([(var_of(&ctx, x), 3)]),
        };
        uc.store_sat(vec![h, h ^ 0xdead], bad);
        let mut solver = Solver::default();
        solver.set_unsat_cache(uc);
        match solver.check(&ctx, &cs) {
            SatResult::Sat(m) => {
                // The poisoned model was rejected by verification and a
                // real search produced a correct one.
                assert!(m.satisfies(&ctx, &cs));
                assert!(m.value_of(x, &ctx).unwrap() >= 10);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        let s = solver.stats();
        assert_eq!(s.ucache_sup_rejects, 1, "{s:?}");
        assert_eq!(s.ucache_sup_hits, 0);
        assert!(s.nodes > 0, "rejection must fall through to search");
    }

    #[test]
    fn provenance_events_carry_disposition_and_context() {
        use statsym_telemetry::{Clock, MemRecorder, TraceEvent};
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 9);
        let c5 = ctx.int(5);
        let cs = [Constraint::new(CmpOp::Eq, x, c5)];
        let rec = MemRecorder::new(Clock::steps());
        let mut solver = Solver::default();
        solver.set_provenance(2);
        solver.set_query_origin(7, "convert:4");
        solver.check_traced_at(&ctx, &cs, &rec, "feasibility");
        solver.check_traced_at(&ctx, &cs, &rec, "feasibility");
        solver.check_traced(&ctx, &[], &rec);
        let queries: Vec<_> = rec
            .events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Query {
                    sid,
                    loc,
                    rank,
                    site,
                    verdict,
                    cache,
                    us,
                    ..
                } => Some((sid, loc, rank, site, verdict, cache, us)),
                _ => None,
            })
            .collect();
        assert_eq!(queries.len(), 3);
        assert_eq!(
            queries[0],
            (
                7,
                "convert:4".to_string(),
                2,
                "feasibility".to_string(),
                "sat".to_string(),
                "search".to_string(),
                0, // µs zeroed under the deterministic step clock
            )
        );
        assert_eq!(queries[1].5, "private");
        assert_eq!(queries[2].3, "check", "untagged callsite falls back");
        assert_eq!(queries[2].5, "empty");
        // Every emitted line survives the strict parser.
        for ev in rec.events() {
            let line = ev.to_json_line();
            statsym_telemetry::parse_trace_strict(&line).unwrap_or_else(|e| {
                panic!("strict parse failed for {line}: {e}");
            });
        }

        // Without set_provenance, no query events are emitted.
        let rec2 = MemRecorder::new(Clock::steps());
        let mut plain = Solver::default();
        plain.check_traced_at(&ctx, &cs, &rec2, "feasibility");
        assert!(rec2
            .events()
            .iter()
            .all(|e| !matches!(e, TraceEvent::Query { .. })));
    }

    #[test]
    fn floor_ceil_div_helpers() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(floor_div(6, 3), 2);
        assert_eq!(ceil_div(6, 3), 2);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(ceil_div(-7, -2), 4);
    }
}
