//! Interned term DAG and constraint atoms.

use crate::interval::Interval;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Id of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Id of a solver variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term over integers. Terms are interned: structurally equal terms
/// share a [`TermId`], and constructors constant-fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// Integer constant.
    Const(i64),
    /// A bounded variable.
    Var(VarId),
    /// `a + b`.
    Add(TermId, TermId),
    /// `a - b`.
    Sub(TermId, TermId),
    /// `a * b`.
    Mul(TermId, TermId),
    /// `a / b` (truncating).
    Div(TermId, TermId),
    /// `a % b` (truncating).
    Rem(TermId, TermId),
    /// `-a`.
    Neg(TermId),
}

/// Metadata for a variable: its name and initial (declared) domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Debug name (e.g. `arg[17]` for string byte 17).
    pub name: String,
    /// Declared domain.
    pub domain: Interval,
}

/// Comparison operators for constraint atoms. `Gt`/`Ge` are normalized
/// away by swapping operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `lhs == rhs`.
    Eq,
    /// `lhs != rhs`.
    Ne,
    /// `lhs < rhs`.
    Lt,
    /// `lhs <= rhs`.
    Le,
}

impl CmpOp {
    /// The operator of the negated atom (`!(a < b)` is `b <= a`, handled
    /// by [`Constraint::negate`], which also swaps operands for `Lt`/`Le`).
    pub fn concrete(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
        }
    }
}

/// An atomic constraint `lhs op rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: TermId,
    /// Right operand.
    pub rhs: TermId,
}

impl Constraint {
    /// Creates `lhs op rhs`.
    pub fn new(op: CmpOp, lhs: TermId, rhs: TermId) -> Constraint {
        Constraint { op, lhs, rhs }
    }

    /// The logical negation, still an atomic constraint:
    /// `!(a == b)` → `a != b`, `!(a < b)` → `b <= a`, etc.
    #[must_use]
    pub fn negate(self) -> Constraint {
        match self.op {
            CmpOp::Eq => Constraint::new(CmpOp::Ne, self.lhs, self.rhs),
            CmpOp::Ne => Constraint::new(CmpOp::Eq, self.lhs, self.rhs),
            CmpOp::Lt => Constraint::new(CmpOp::Le, self.rhs, self.lhs),
            CmpOp::Le => Constraint::new(CmpOp::Lt, self.rhs, self.lhs),
        }
    }
}

/// SplitMix64 finalizer: the bit mixer behind all structural hashes.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// FNV-1a over raw bytes (variable names).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Order-sensitive combine for binary nodes.
#[inline]
fn combine2(tag: u64, a: u64, b: u64) -> u64 {
    mix64(
        tag.wrapping_add(a.wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add(b.wrapping_mul(0xc2b2ae3d27d4eb4f)),
    )
}

/// The append-only term store shared by every handle cloned from one
/// root context. All published state lives behind one mutex; readers
/// never take it on the hot path because each handle keeps a flat local
/// copy of the prefix it has seen (ids are dense and never reassigned,
/// so a stale copy is simply a shorter prefix of the same data).
#[derive(Debug, Default)]
struct Store {
    tail: Mutex<StoreTail>,
}

#[derive(Debug, Default)]
struct StoreTail {
    /// `(term, structural hash)` per id, in interning order.
    terms: Vec<(Term, u64)>,
    intern: HashMap<Term, TermId>,
    vars: Vec<VarInfo>,
    /// Structural hash per variable, parallel to `vars`.
    var_hashes: Vec<u64>,
}

/// The per-handle snapshot of the store prefix, plus a private intern
/// memo so repeat constructions skip the store lock entirely.
#[derive(Debug, Default)]
struct LocalView {
    terms: Vec<(Term, u64)>,
    vars: Vec<VarInfo>,
    var_hashes: Vec<u64>,
    memo: HashMap<Term, TermId>,
}

/// The interning context: owns all terms and variable metadata.
///
/// Append-only: the symbolic executor shares one `TermCtx` across all of
/// its states; forked states only hold `TermId`s.
///
/// A `TermCtx` is a cheap *handle* over a shared, thread-safe store:
/// `clone()` yields a second handle onto the same term/variable id
/// space, so worker threads of one engine can intern concurrently and
/// exchange bare `TermId`s. Reads stay lock-free via a per-handle flat
/// snapshot that is refreshed from the store only when an id past the
/// snapshot is dereferenced; only interning a term the handle has not
/// seen takes the store lock. `TermCtx::new()` (and `default()`) still
/// create a fresh, fully independent store, preserving the historical
/// property that separately constructed contexts have unrelated id
/// spaces.
///
/// Every interned term carries a precomputed *structural* hash
/// ([`TermCtx::term_hash`]): variables hash by (name, declared domain)
/// rather than by `VarId`, so hashes agree across independently built
/// contexts that intern structurally identical terms — the property the
/// cross-engine shared solver cache relies on. Hashes are computed
/// incrementally at intern time (children are already interned), so
/// fingerprinting a query is allocation- and traversal-free.
#[derive(Debug)]
pub struct TermCtx {
    store: Arc<Store>,
    local: RefCell<LocalView>,
}

impl Default for TermCtx {
    fn default() -> TermCtx {
        TermCtx::new()
    }
}

impl Clone for TermCtx {
    /// A second handle onto the *same* store (shared id space), with its
    /// own snapshot and intern memo.
    fn clone(&self) -> TermCtx {
        let l = self.local.borrow();
        TermCtx {
            store: Arc::clone(&self.store),
            local: RefCell::new(LocalView {
                terms: l.terms.clone(),
                vars: l.vars.clone(),
                var_hashes: l.var_hashes.clone(),
                memo: l.memo.clone(),
            }),
        }
    }
}

impl TermCtx {
    /// Creates an empty context backed by a fresh store.
    pub fn new() -> TermCtx {
        TermCtx {
            store: Arc::new(Store::default()),
            local: RefCell::new(LocalView::default()),
        }
    }

    /// Copies everything the store has published past this handle's
    /// snapshot into the local flat views.
    #[cold]
    fn refresh(&self) {
        let tail = self.store.tail.lock().unwrap_or_else(|e| e.into_inner());
        let mut l = self.local.borrow_mut();
        if l.terms.len() < tail.terms.len() {
            let from = l.terms.len();
            l.terms.extend_from_slice(&tail.terms[from..]);
        }
        if l.vars.len() < tail.vars.len() {
            let from = l.vars.len();
            l.vars.extend_from_slice(&tail.vars[from..]);
            l.var_hashes.extend_from_slice(&tail.var_hashes[from..]);
        }
    }

    /// Number of interned terms (across all handles of this store).
    pub fn term_count(&self) -> usize {
        self.refresh();
        self.local.borrow().terms.len()
    }

    /// Number of variables (across all handles of this store).
    pub fn var_count(&self) -> usize {
        self.refresh();
        self.local.borrow().vars.len()
    }

    /// The term behind an id.
    #[inline]
    pub fn term(&self, id: TermId) -> Term {
        let i = id.index();
        {
            let l = self.local.borrow();
            if i < l.terms.len() {
                return l.terms[i].0;
            }
        }
        self.refresh();
        self.local.borrow().terms[i].0
    }

    /// Variable metadata (owned; the handle snapshot may grow under it).
    pub fn var_info(&self, v: VarId) -> VarInfo {
        let i = v.index();
        {
            let l = self.local.borrow();
            if i < l.vars.len() {
                return l.vars[i].clone();
            }
        }
        self.refresh();
        self.local.borrow().vars[i].clone()
    }

    /// Declared domain of a variable — the hot-path subset of
    /// [`TermCtx::var_info`] (no `String` clone).
    #[inline]
    pub fn var_domain(&self, v: VarId) -> Interval {
        let i = v.index();
        {
            let l = self.local.borrow();
            if i < l.vars.len() {
                return l.vars[i].domain;
            }
        }
        self.refresh();
        self.local.borrow().vars[i].domain
    }

    #[inline]
    fn var_hash(&self, v: VarId) -> u64 {
        let i = v.index();
        {
            let l = self.local.borrow();
            if i < l.var_hashes.len() {
                return l.var_hashes[i];
            }
        }
        self.refresh();
        self.local.borrow().var_hashes[i]
    }

    /// All variables appearing in `t` (deduplicated, unordered).
    pub fn vars_of(&self, t: TermId) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut stack = vec![t];
        let mut seen = std::collections::HashSet::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            match self.term(id) {
                Term::Const(_) => {}
                Term::Var(v) => {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
                Term::Add(a, b)
                | Term::Sub(a, b)
                | Term::Mul(a, b)
                | Term::Div(a, b)
                | Term::Rem(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Term::Neg(a) => stack.push(a),
            }
        }
        out
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.local.get_mut().memo.get(&t) {
            return id;
        }
        // Hash before taking the store lock: children are interned, so
        // this only reads (and possibly refreshes) the local snapshot.
        let h = self.structural_hash(t);
        let id = {
            let mut tail = self.store.tail.lock().unwrap_or_else(|e| e.into_inner());
            match tail.intern.get(&t) {
                Some(&id) => id,
                None => {
                    let id = TermId(tail.terms.len() as u32);
                    tail.terms.push((t, h));
                    tail.intern.insert(t, id);
                    id
                }
            }
        };
        let l = self.local.get_mut();
        l.memo.insert(t, id);
        if id.index() >= l.terms.len() {
            self.refresh();
        }
        id
    }

    /// Structural hash of a term whose children are already interned.
    fn structural_hash(&self, t: Term) -> u64 {
        match t {
            Term::Const(v) => mix64(0x01u64 ^ (v as u64)),
            Term::Var(v) => self.var_hash(v),
            Term::Add(a, b) => combine2(0x03, self.term_hash(a), self.term_hash(b)),
            Term::Sub(a, b) => combine2(0x04, self.term_hash(a), self.term_hash(b)),
            Term::Mul(a, b) => combine2(0x05, self.term_hash(a), self.term_hash(b)),
            Term::Div(a, b) => combine2(0x06, self.term_hash(a), self.term_hash(b)),
            Term::Rem(a, b) => combine2(0x07, self.term_hash(a), self.term_hash(b)),
            Term::Neg(a) => combine2(0x08, self.term_hash(a), 0),
        }
    }

    /// Precomputed structural hash of an interned term. Two terms hash
    /// equal iff they are structurally identical (modulo 64-bit
    /// collisions), even across different `TermCtx` instances.
    #[inline]
    pub fn term_hash(&self, t: TermId) -> u64 {
        let i = t.index();
        {
            let l = self.local.borrow();
            if i < l.terms.len() {
                return l.terms[i].1;
            }
        }
        self.refresh();
        self.local.borrow().terms[i].1
    }

    /// Structural hash of one constraint atom.
    #[inline]
    pub fn constraint_hash(&self, c: &Constraint) -> u64 {
        combine2(
            0x10u64.wrapping_add(c.op as u64),
            self.term_hash(c.lhs),
            self.term_hash(c.rhs),
        )
    }

    /// Order-independent fingerprint of a conjunction of constraints:
    /// a commutative fold (sum ⊕ xor, plus the length) of per-constraint
    /// structural hashes. No allocation, no sorting — O(n) lookups into
    /// precomputed hashes. Used as the solver's query-cache key, both
    /// private and shared.
    pub fn query_fingerprint(&self, constraints: &[Constraint]) -> u64 {
        let mut sum = 0u64;
        let mut xor = 0u64;
        for c in constraints {
            let h = self.constraint_hash(c);
            sum = sum.wrapping_add(h);
            xor ^= h.rotate_left(17);
        }
        mix64(sum ^ xor.wrapping_mul(0x9e3779b97f4a7c15)).wrapping_add(constraints.len() as u64)
    }

    /// Creates a fresh variable with domain `[lo, hi]` and returns its
    /// term id.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> TermId {
        assert!(lo <= hi, "variable domain must be non-empty");
        let name = name.into();
        let h = combine2(
            0x02u64.wrapping_add(fnv1a(name.as_bytes())),
            lo as u64,
            hi as u64,
        );
        let v = {
            let mut tail = self.store.tail.lock().unwrap_or_else(|e| e.into_inner());
            let v = VarId(tail.vars.len() as u32);
            tail.vars.push(VarInfo {
                name,
                domain: Interval::new(lo, hi),
            });
            tail.var_hashes.push(h);
            v
        };
        self.intern(Term::Var(v))
    }

    /// Interns an integer constant.
    pub fn int(&mut self, v: i64) -> TermId {
        self.intern(Term::Const(v))
    }

    /// Returns the constant value of `t` if it is a literal.
    pub fn as_const(&self, t: TermId) -> Option<i64> {
        match self.term(t) {
            Term::Const(v) => Some(v),
            _ => None,
        }
    }

    /// `a + b`, constant-folded.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.int(x.wrapping_add(y)),
            (Some(0), None) => b,
            (None, Some(0)) => a,
            _ => self.intern(Term::Add(a, b)),
        }
    }

    /// `a - b`, constant-folded.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.int(0);
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.int(x.wrapping_sub(y)),
            (None, Some(0)) => a,
            _ => self.intern(Term::Sub(a, b)),
        }
    }

    /// `a * b`, constant-folded.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.int(x.wrapping_mul(y)),
            (Some(1), None) => b,
            (None, Some(1)) => a,
            (Some(0), _) | (_, Some(0)) => self.int(0),
            _ => self.intern(Term::Mul(a, b)),
        }
    }

    /// `a / b`, constant-folded (constant fold of division by zero is
    /// left symbolic; the VM faults on the concrete path instead).
    pub fn div(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) if y != 0 => {
                let v = if x == i64::MIN && y == -1 {
                    i64::MIN
                } else {
                    x / y
                };
                self.int(v)
            }
            (None, Some(1)) => a,
            _ => self.intern(Term::Div(a, b)),
        }
    }

    /// `a % b`, constant-folded.
    pub fn rem(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) if y != 0 => self.int(x.wrapping_rem(y)),
            _ => self.intern(Term::Rem(a, b)),
        }
    }

    /// `-a`, constant-folded.
    pub fn neg(&mut self, a: TermId) -> TermId {
        match self.as_const(a) {
            Some(x) => self.int(x.wrapping_neg()),
            None => self.intern(Term::Neg(a)),
        }
    }

    /// Renders a term for diagnostics.
    pub fn render(&self, t: TermId) -> String {
        match self.term(t) {
            Term::Const(v) => v.to_string(),
            Term::Var(v) => self.var_info(v).name,
            Term::Add(a, b) => format!("({} + {})", self.render(a), self.render(b)),
            Term::Sub(a, b) => format!("({} - {})", self.render(a), self.render(b)),
            Term::Mul(a, b) => format!("({} * {})", self.render(a), self.render(b)),
            Term::Div(a, b) => format!("({} / {})", self.render(a), self.render(b)),
            Term::Rem(a, b) => format!("({} % {})", self.render(a), self.render(b)),
            Term::Neg(a) => format!("(-{})", self.render(a)),
        }
    }

    /// Renders a constraint for diagnostics.
    pub fn render_constraint(&self, c: &Constraint) -> String {
        let op = match c.op {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
        };
        format!("{} {} {}", self.render(c.lhs), op, self.render(c.rhs))
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_structurally_equal_terms() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 10);
        let one_a = ctx.int(1);
        let one_b = ctx.int(1);
        assert_eq!(one_a, one_b);
        let s1 = ctx.add(x, one_a);
        let s2 = ctx.add(x, one_b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn constant_folding() {
        let mut ctx = TermCtx::new();
        let a = ctx.int(6);
        let b = ctx.int(7);
        let prod = ctx.mul(a, b);
        assert_eq!(ctx.as_const(prod), Some(42));
        let x = ctx.new_var("x", 0, 10);
        let zero = ctx.int(0);
        assert_eq!(ctx.add(x, zero), x);
        assert_eq!(ctx.mul(x, zero), zero);
        assert_eq!(ctx.sub(x, x), zero);
        let one = ctx.int(1);
        assert_eq!(ctx.mul(x, one), x);
        assert_eq!(ctx.div(x, one), x);
    }

    #[test]
    fn negate_roundtrips() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 10);
        let c5 = ctx.int(5);
        let c = Constraint::new(CmpOp::Lt, x, c5);
        let n = c.negate();
        assert_eq!(n, Constraint::new(CmpOp::Le, c5, x));
        assert_eq!(n.negate(), c);
        let e = Constraint::new(CmpOp::Eq, x, c5);
        assert_eq!(e.negate().negate(), e);
    }

    #[test]
    fn vars_of_walks_dag() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 10);
        let y = ctx.new_var("y", 0, 10);
        let sum = ctx.add(x, y);
        let expr = ctx.mul(sum, x);
        let vars = ctx.vars_of(expr);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn cmpop_concrete_semantics() {
        assert!(CmpOp::Eq.concrete(3, 3));
        assert!(CmpOp::Ne.concrete(3, 4));
        assert!(CmpOp::Lt.concrete(3, 4));
        assert!(CmpOp::Le.concrete(4, 4));
        assert!(!CmpOp::Lt.concrete(4, 4));
    }

    #[test]
    fn term_hashes_are_structural_across_contexts() {
        let mut a = TermCtx::new();
        let mut b = TermCtx::new();
        // Different interning orders, same structures.
        let bx = b.new_var("x", 0, 10);
        let ax = a.new_var("x", 0, 10);
        let a1 = a.int(1);
        let b9 = b.int(9);
        let b1 = b.int(1);
        let asum = a.add(ax, a1);
        let bsum = b.add(bx, b1);
        assert_ne!(asum.0, bsum.0, "ids diverge across contexts");
        assert_eq!(a.term_hash(asum), b.term_hash(bsum));
        assert_eq!(a.term_hash(ax), b.term_hash(bx));
        assert_ne!(a.term_hash(a1), b.term_hash(b9));
        // Same name, different domain: different variable.
        let mut c = TermCtx::new();
        let cx = c.new_var("x", 0, 99);
        assert_ne!(a.term_hash(ax), c.term_hash(cx));
    }

    #[test]
    fn query_fingerprint_is_order_independent() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 10);
        let y = ctx.new_var("y", 0, 10);
        let c5 = ctx.int(5);
        let a = Constraint::new(CmpOp::Lt, x, c5);
        let b = Constraint::new(CmpOp::Ne, y, c5);
        let ab = ctx.query_fingerprint(&[a, b]);
        let ba = ctx.query_fingerprint(&[b, a]);
        assert_eq!(ab, ba);
        assert_ne!(ab, ctx.query_fingerprint(&[a]));
        assert_ne!(ab, ctx.query_fingerprint(&[a, b, b]));
        assert_ne!(
            ctx.query_fingerprint(&[a, a, b]),
            ctx.query_fingerprint(&[a, b, b])
        );
    }

    #[test]
    fn constraint_hash_distinguishes_op_and_operand_order() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 10);
        let c5 = ctx.int(5);
        let lt = ctx.constraint_hash(&Constraint::new(CmpOp::Lt, x, c5));
        let le = ctx.constraint_hash(&Constraint::new(CmpOp::Le, x, c5));
        let gt = ctx.constraint_hash(&Constraint::new(CmpOp::Lt, c5, x));
        assert_ne!(lt, le);
        assert_ne!(lt, gt);
    }

    #[test]
    fn render_is_readable() {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", 0, 10);
        let one = ctx.int(1);
        let t = ctx.add(x, one);
        assert_eq!(ctx.render(t), "(x + 1)");
        let c = Constraint::new(CmpOp::Le, t, one);
        assert_eq!(ctx.render_constraint(&c), "(x + 1) <= 1");
    }

    #[test]
    fn cloned_handles_share_one_id_space() {
        let mut a = TermCtx::new();
        let x = a.new_var("x", 0, 10);
        let mut b = a.clone();
        // Interning through either handle lands in the same store, so
        // structurally equal terms agree on ids across handles.
        let one_b = b.int(1);
        let one_a = a.int(1);
        assert_eq!(one_a, one_b);
        let sum_b = b.add(x, one_b);
        let sum_a = a.add(x, one_a);
        assert_eq!(sum_a, sum_b);
        assert_eq!(a.term_count(), b.term_count());
        // Terms created through one handle are readable through another.
        let y = b.new_var("y", -5, 5);
        assert_eq!(a.render(y), "y");
        assert_eq!(a.var_domain(a.vars_of(y)[0]), Interval::new(-5, 5));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let mut root = TermCtx::new();
        let x = root.new_var("x", 0, 100);
        let handles: Vec<TermCtx> = (0..4).map(|_| root.clone()).collect();
        let ids: Vec<Vec<TermId>> = std::thread::scope(|s| {
            handles
                .into_iter()
                .map(|mut h| {
                    s.spawn(move || {
                        (0..64)
                            .map(|i| {
                                let c = h.int(i % 16 + 1);
                                h.add(x, c)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        // Every thread must agree on the id of each structurally equal
        // term, and the root handle must be able to read all of them.
        for row in &ids[1..] {
            assert_eq!(row, &ids[0]);
        }
        for &id in &ids[0] {
            assert!(matches!(root.term(id), Term::Add(_, _)));
        }
    }
}
