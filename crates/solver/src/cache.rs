//! Query caches: the abstraction the solver consults before (and
//! publishes to after) running the decision procedure.
//!
//! The solver keeps two layers:
//!
//! 1. a **private** per-`Solver` map from query fingerprint to the full
//!    [`SatResult`] (models included) — exactly the behavior of the
//!    original single-threaded cache;
//! 2. an optional injected [`QueryCache`] holding *model-free verdicts*
//!    only, so it can safely be shared across engines: `TermId`/`VarId`
//!    spaces are per-`TermCtx`, so a `Model` (a `VarId → i64` map) from
//!    one engine is meaningless — and unsound to reuse — in another.
//!    The query fingerprint ([`crate::TermCtx::query_fingerprint`]) is
//!    structural, so fingerprints *do* agree across contexts.
//!
//! `Unknown` results are never published: they encode a local budget
//! exhaustion, not a fact about the constraints, and sharing them could
//! make one worker's budget wrinkle another worker's exploration.
//!
//! [`SharedCache`] is the concurrent implementation: N mutex-guarded
//! shards indexed by the low bits of the fingerprint, with lock-free
//! hit/miss/contention counters. [`LocalVerdictCache`] is the
//! single-threaded implementation of the same trait, for callers that
//! want cross-attempt reuse without threads.

use crate::solve::SatResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, TryLockError};

/// A satisfiability verdict safe to share across engines: no model, and
/// never `Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedVerdict {
    /// The constraint set is satisfiable (some engine found a model).
    Sat,
    /// The constraint set is provably unsatisfiable.
    Unsat,
}

impl CachedVerdict {
    /// The shareable verdict behind a full result, if any.
    pub fn from_result(r: &SatResult) -> Option<CachedVerdict> {
        match r {
            SatResult::Sat(_) => Some(CachedVerdict::Sat),
            SatResult::Unsat => Some(CachedVerdict::Unsat),
            SatResult::Unknown => None,
        }
    }
}

/// A model-free verdict store keyed by structural query fingerprint.
///
/// Implementations take `&self` so a single instance can be consulted
/// from many solvers (behind an `Arc` for the concurrent one).
pub trait QueryCache {
    /// Looks up a previously published verdict.
    fn lookup(&self, key: u64) -> Option<CachedVerdict>;

    /// Publishes a definitive verdict. Implementations may drop the
    /// entry (e.g. under memory pressure); the cache is advisory.
    fn publish(&self, key: u64, verdict: CachedVerdict);

    /// Number of cached entries.
    fn entries(&self) -> usize;

    /// Traffic counters, readable through a trait object so callers
    /// holding an `Arc<dyn QueryCache>` (e.g. the portfolio, or a
    /// fault-injection wrapper) can still report cache stats.
    /// Implementations without counters report entries only.
    fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            entries: self.entries() as u64,
            ..SharedCacheStats::default()
        }
    }
}

/// Counters describing shared-cache traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Verdicts published.
    pub stores: u64,
    /// Lock acquisitions that found the shard already held.
    pub contention: u64,
    /// Entries currently cached (across all shards).
    pub entries: u64,
}

/// A sharded concurrent verdict cache: `shards` independent
/// `Mutex<HashMap>`s, indexed by the low bits of the fingerprint, so
/// workers contend only when they hash into the same shard at the same
/// moment. Contention is observed (not avoided) via `try_lock`: a
/// would-block attempt bumps the contention counter and then takes the
/// blocking path.
#[derive(Debug)]
pub struct SharedCache {
    shards: Box<[Mutex<HashMap<u64, CachedVerdict>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    contention: AtomicU64,
}

impl SharedCache {
    /// Creates a cache with `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> SharedCache {
        let n = shards.max(1).next_power_of_two();
        SharedCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            contention: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> std::sync::MutexGuard<'_, HashMap<u64, CachedVerdict>> {
        let m = &self.shards[(key as usize) & (self.shards.len() - 1)];
        match m.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                m.lock().unwrap_or_else(|e| e.into_inner())
            }
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            contention: self.contention.load(Ordering::Relaxed),
            entries: self.entries() as u64,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl QueryCache for SharedCache {
    fn lookup(&self, key: u64) -> Option<CachedVerdict> {
        let hit = self.shard(key).get(&key).copied();
        match hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn publish(&self, key: u64, verdict: CachedVerdict) {
        self.shard(key).insert(key, verdict);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.try_lock() {
                Ok(g) => g.len(),
                Err(TryLockError::WouldBlock) => {
                    self.contention.fetch_add(1, Ordering::Relaxed);
                    s.lock().unwrap_or_else(|e| e.into_inner()).len()
                }
                Err(TryLockError::Poisoned(e)) => e.into_inner().len(),
            })
            .sum()
    }

    fn stats(&self) -> SharedCacheStats {
        SharedCache::stats(self)
    }
}

/// Single-threaded [`QueryCache`]: one plain map behind a `RefCell`.
/// Useful for cross-attempt verdict reuse without spawning workers.
#[derive(Debug, Default)]
pub struct LocalVerdictCache {
    map: std::cell::RefCell<HashMap<u64, CachedVerdict>>,
}

impl LocalVerdictCache {
    /// Creates an empty cache.
    pub fn new() -> LocalVerdictCache {
        LocalVerdictCache::default()
    }
}

impl QueryCache for LocalVerdictCache {
    fn lookup(&self, key: u64) -> Option<CachedVerdict> {
        self.map.borrow().get(&key).copied()
    }

    fn publish(&self, key: u64, verdict: CachedVerdict) {
        self.map.borrow_mut().insert(key, verdict);
    }

    fn entries(&self) -> usize {
        self.map.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SharedCache::new(0).shard_count(), 1);
        assert_eq!(SharedCache::new(1).shard_count(), 1);
        assert_eq!(SharedCache::new(3).shard_count(), 4);
        assert_eq!(SharedCache::new(16).shard_count(), 16);
    }

    #[test]
    fn lookup_publish_roundtrip_and_counters() {
        let c = SharedCache::new(4);
        assert_eq!(c.lookup(42), None);
        c.publish(42, CachedVerdict::Unsat);
        assert_eq!(c.lookup(42), Some(CachedVerdict::Unsat));
        c.publish(7, CachedVerdict::Sat);
        assert_eq!(c.lookup(7), Some(CachedVerdict::Sat));
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.stores, 2);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn concurrent_publish_lookup_is_consistent() {
        let cache = Arc::new(SharedCache::new(8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let key = t * 1000 + i;
                        cache.publish(
                            key,
                            if key % 2 == 0 {
                                CachedVerdict::Sat
                            } else {
                                CachedVerdict::Unsat
                            },
                        );
                        assert!(cache.lookup(key).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.entries(), 4000);
        for key in 0..4000u64 {
            let want = if key % 2 == 0 {
                CachedVerdict::Sat
            } else {
                CachedVerdict::Unsat
            };
            assert_eq!(cache.lookup(key), Some(want));
        }
    }

    #[test]
    fn local_cache_implements_the_trait() {
        let c = LocalVerdictCache::new();
        assert_eq!(c.lookup(1), None);
        c.publish(1, CachedVerdict::Sat);
        assert_eq!(c.lookup(1), Some(CachedVerdict::Sat));
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn verdict_from_result_drops_unknown_and_models() {
        use crate::solve::Model;
        assert_eq!(
            CachedVerdict::from_result(&SatResult::Sat(Model::default())),
            Some(CachedVerdict::Sat)
        );
        assert_eq!(
            CachedVerdict::from_result(&SatResult::Unsat),
            Some(CachedVerdict::Unsat)
        );
        assert_eq!(CachedVerdict::from_result(&SatResult::Unknown), None);
    }
}
