//! Query caches: the abstraction the solver consults before (and
//! publishes to after) running the decision procedure.
//!
//! The solver keeps two layers:
//!
//! 1. a **private** per-`Solver` map from query fingerprint to the full
//!    [`SatResult`] (models included) — exactly the behavior of the
//!    original single-threaded cache;
//! 2. an optional injected [`QueryCache`] holding *model-free verdicts*
//!    only, so it can safely be shared across engines: `TermId`/`VarId`
//!    spaces are per-`TermCtx`, so a `Model` (a `VarId → i64` map) from
//!    one engine is meaningless — and unsound to reuse — in another.
//!    The query fingerprint ([`crate::TermCtx::query_fingerprint`]) is
//!    structural, so fingerprints *do* agree across contexts.
//!
//! `Unknown` results are never published: they encode a local budget
//! exhaustion, not a fact about the constraints, and sharing them could
//! make one worker's budget wrinkle another worker's exploration.
//!
//! [`SharedCache`] is the concurrent implementation: N mutex-guarded
//! shards indexed by the low bits of the fingerprint, with lock-free
//! hit/miss/contention counters. [`LocalVerdictCache`] is the
//! single-threaded implementation of the same trait, for callers that
//! want cross-attempt reuse without threads.

use crate::solve::{Model, SatResult};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, TryLockError};

/// A satisfiability verdict safe to share across engines: no model, and
/// never `Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedVerdict {
    /// The constraint set is satisfiable (some engine found a model).
    Sat,
    /// The constraint set is provably unsatisfiable.
    Unsat,
}

impl CachedVerdict {
    /// The shareable verdict behind a full result, if any.
    pub fn from_result(r: &SatResult) -> Option<CachedVerdict> {
        match r {
            SatResult::Sat(_) => Some(CachedVerdict::Sat),
            SatResult::Unsat => Some(CachedVerdict::Unsat),
            SatResult::Unknown => None,
        }
    }
}

/// A model-free verdict store keyed by structural query fingerprint.
///
/// Implementations take `&self` so a single instance can be consulted
/// from many solvers (behind an `Arc` for the concurrent one).
pub trait QueryCache {
    /// Looks up a previously published verdict.
    fn lookup(&self, key: u64) -> Option<CachedVerdict>;

    /// Publishes a definitive verdict. Implementations may drop the
    /// entry (e.g. under memory pressure); the cache is advisory.
    fn publish(&self, key: u64, verdict: CachedVerdict);

    /// Number of cached entries.
    fn entries(&self) -> usize;

    /// Traffic counters, readable through a trait object so callers
    /// holding an `Arc<dyn QueryCache>` (e.g. the portfolio, or a
    /// fault-injection wrapper) can still report cache stats.
    /// Implementations without counters report entries only.
    fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            entries: self.entries() as u64,
            ..SharedCacheStats::default()
        }
    }
}

/// Counters describing shared-cache traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Verdicts published.
    pub stores: u64,
    /// Lock acquisitions that found the shard already held.
    pub contention: u64,
    /// Entries currently cached (across all shards).
    pub entries: u64,
}

/// A sharded concurrent verdict cache: `shards` independent
/// `Mutex<HashMap>`s, indexed by the low bits of the fingerprint, so
/// workers contend only when they hash into the same shard at the same
/// moment. Contention is observed (not avoided) via `try_lock`: a
/// would-block attempt bumps the contention counter and then takes the
/// blocking path.
#[derive(Debug)]
pub struct SharedCache {
    shards: Box<[Mutex<HashMap<u64, CachedVerdict>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    contention: AtomicU64,
}

impl SharedCache {
    /// Creates a cache with `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> SharedCache {
        let n = shards.max(1).next_power_of_two();
        SharedCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            contention: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> std::sync::MutexGuard<'_, HashMap<u64, CachedVerdict>> {
        let m = &self.shards[(key as usize) & (self.shards.len() - 1)];
        match m.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                m.lock().unwrap_or_else(|e| e.into_inner())
            }
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            contention: self.contention.load(Ordering::Relaxed),
            entries: self.entries() as u64,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl QueryCache for SharedCache {
    fn lookup(&self, key: u64) -> Option<CachedVerdict> {
        let hit = self.shard(key).get(&key).copied();
        match hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn publish(&self, key: u64, verdict: CachedVerdict) {
        self.shard(key).insert(key, verdict);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn entries(&self) -> usize {
        // Deliberately a plain blocking lock: `entries()` is a stats
        // read, and routing it through the contention-observing
        // `shard()` path would let stats collection inflate the very
        // counter it is reporting.
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    fn stats(&self) -> SharedCacheStats {
        SharedCache::stats(self)
    }
}

/// What the unsat/counterexample cache can answer for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UcAnswer {
    /// A cached unsat core is a sub-multiset of the query's conjuncts:
    /// the query is unsatisfiable (adding conjuncts never helps).
    Unsat,
    /// A cached model came from a *superset* of the query's conjuncts,
    /// so it is a *candidate* model for the query. The caller MUST
    /// verify `model.satisfies(...)` against the actual constraints
    /// before serving it: the match is on structural hashes, and the
    /// model's `VarId`s may belong to a different `TermCtx`.
    Sat(Model),
}

/// Traffic counters for [`UnsatCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnsatCacheStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups answered `Unsat` via subset matching.
    pub sub_hits: u64,
    /// Lookups that returned a candidate model via superset matching
    /// (the caller may still reject it after verification).
    pub sup_candidates: u64,
    /// Entries accepted by `store`.
    pub stores: u64,
    /// Entries rejected by `store` (empty, too wide, or duplicate).
    pub store_rejects: u64,
    /// Entries currently held.
    pub entries: u64,
}

#[derive(Debug, Clone)]
enum UcKind {
    Unsat,
    Sat(Model),
}

#[derive(Debug, Clone)]
struct UcEntry {
    /// Sorted structural hashes of the entry's conjuncts (a multiset).
    hashes: Vec<u64>,
    kind: UcKind,
}

/// An unsat-core / counterexample cache layered on top of the verdict
/// caches: where [`QueryCache`] only answers *exact* fingerprint
/// matches, this cache exploits the partial order on conjunct sets.
///
/// Each entry is the sorted multiset of *structural hashes* of a
/// query's conjuncts, tagged with its definitive outcome:
///
/// * **Unsat entries** act as unsat cores: any query whose conjunct
///   multiset is a *superset* of a cached unsat entry is itself unsat
///   (conjunction is monotone — adding constraints never makes an
///   unsatisfiable set satisfiable). Subset matching is sound even
///   across `TermCtx`s because structural hashes are context-free.
/// * **Sat entries** carry the model that satisfied them: any query
///   whose conjunct multiset is a *subset* of a cached sat entry is a
///   weakening of it, so the stored model is a candidate. Hash
///   collisions and cross-context `VarId`s make this half advisory
///   only — the caller must concretely verify the model before serving
///   it (see [`UcAnswer::Sat`]).
///
/// Contents are completion-order dependent, so a shared `UnsatCache`
/// (like the shared [`QueryCache`] with models disabled) is a perf
/// feature: runs that must be byte-reproducible across worker counts
/// keep it private per solver clone or disabled.
///
/// Bounded FIFO: at most `cap` entries, each at most `MAX_WIDTH`
/// conjuncts wide (wide entries are poor generalizers and make the
/// linear scan expensive).
#[derive(Debug)]
pub struct UnsatCache {
    entries: Mutex<VecDeque<UcEntry>>,
    cap: usize,
    lookups: AtomicU64,
    sub_hits: AtomicU64,
    sup_candidates: AtomicU64,
    stores: AtomicU64,
    store_rejects: AtomicU64,
}

impl UnsatCache {
    /// Widest conjunct multiset worth caching.
    pub const MAX_WIDTH: usize = 96;

    /// Default entry capacity.
    pub const DEFAULT_CAP: usize = 256;

    /// Creates a cache bounded to `cap` entries (minimum 1).
    pub fn new(cap: usize) -> UnsatCache {
        UnsatCache {
            entries: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            lookups: AtomicU64::new(0),
            sub_hits: AtomicU64::new(0),
            sup_candidates: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            store_rejects: AtomicU64::new(0),
        }
    }

    /// `true` iff sorted multiset `small` is contained in sorted
    /// multiset `big` (two-pointer walk; duplicates count).
    fn subset(small: &[u64], big: &[u64]) -> bool {
        if small.len() > big.len() {
            return false;
        }
        let mut j = 0;
        for &h in small {
            loop {
                if j == big.len() {
                    return false;
                }
                let b = big[j];
                j += 1;
                if b == h {
                    break;
                }
                if b > h {
                    return false;
                }
            }
        }
        true
    }

    /// Answers for a query whose conjuncts hash (sorted) to `hashes`.
    ///
    /// Unsat subset matches win over sat superset candidates: a subset
    /// match is a proof, a superset match is only a hint.
    pub fn lookup(&self, hashes: &[u64]) -> Option<UcAnswer> {
        debug_assert!(hashes.windows(2).all(|w| w[0] <= w[1]), "hashes sorted");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if hashes.is_empty() {
            return None;
        }
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut candidate = None;
        for e in entries.iter() {
            match &e.kind {
                UcKind::Unsat => {
                    if Self::subset(&e.hashes, hashes) {
                        self.sub_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(UcAnswer::Unsat);
                    }
                }
                UcKind::Sat(m) => {
                    if candidate.is_none() && Self::subset(hashes, &e.hashes) {
                        candidate = Some(m.clone());
                    }
                }
            }
        }
        drop(entries);
        candidate.map(|m| {
            self.sup_candidates.fetch_add(1, Ordering::Relaxed);
            UcAnswer::Sat(m)
        })
    }

    /// Records a definitively-unsat conjunct multiset.
    pub fn store_unsat(&self, mut hashes: Vec<u64>) {
        hashes.sort_unstable();
        self.store(UcEntry {
            hashes,
            kind: UcKind::Unsat,
        });
    }

    /// Records a satisfiable conjunct multiset together with the model
    /// that satisfied it.
    pub fn store_sat(&self, mut hashes: Vec<u64>, model: Model) {
        hashes.sort_unstable();
        self.store(UcEntry {
            hashes,
            kind: UcKind::Sat(model),
        });
    }

    fn store(&self, entry: UcEntry) {
        if entry.hashes.is_empty() || entry.hashes.len() > Self::MAX_WIDTH {
            self.store_rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let dup = entries.iter().any(|e| {
            e.hashes == entry.hashes
                && matches!(
                    (&e.kind, &entry.kind),
                    (UcKind::Unsat, UcKind::Unsat) | (UcKind::Sat(_), UcKind::Sat(_))
                )
        });
        if dup {
            self.store_rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if entries.len() == self.cap {
            entries.pop_front();
        }
        entries.push_back(entry);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> UnsatCacheStats {
        UnsatCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            sub_hits: self.sub_hits.load(Ordering::Relaxed),
            sup_candidates: self.sup_candidates.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            store_rejects: self.store_rejects.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
        }
    }
}

impl Default for UnsatCache {
    fn default() -> UnsatCache {
        UnsatCache::new(Self::DEFAULT_CAP)
    }
}

/// Single-threaded [`QueryCache`]: one plain map behind a `RefCell`.
/// Useful for cross-attempt verdict reuse without spawning workers.
#[derive(Debug, Default)]
pub struct LocalVerdictCache {
    map: std::cell::RefCell<HashMap<u64, CachedVerdict>>,
}

impl LocalVerdictCache {
    /// Creates an empty cache.
    pub fn new() -> LocalVerdictCache {
        LocalVerdictCache::default()
    }
}

impl QueryCache for LocalVerdictCache {
    fn lookup(&self, key: u64) -> Option<CachedVerdict> {
        self.map.borrow().get(&key).copied()
    }

    fn publish(&self, key: u64, verdict: CachedVerdict) {
        self.map.borrow_mut().insert(key, verdict);
    }

    fn entries(&self) -> usize {
        self.map.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SharedCache::new(0).shard_count(), 1);
        assert_eq!(SharedCache::new(1).shard_count(), 1);
        assert_eq!(SharedCache::new(3).shard_count(), 4);
        assert_eq!(SharedCache::new(16).shard_count(), 16);
    }

    #[test]
    fn lookup_publish_roundtrip_and_counters() {
        let c = SharedCache::new(4);
        assert_eq!(c.lookup(42), None);
        c.publish(42, CachedVerdict::Unsat);
        assert_eq!(c.lookup(42), Some(CachedVerdict::Unsat));
        c.publish(7, CachedVerdict::Sat);
        assert_eq!(c.lookup(7), Some(CachedVerdict::Sat));
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.stores, 2);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn concurrent_publish_lookup_is_consistent() {
        let cache = Arc::new(SharedCache::new(8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let key = t * 1000 + i;
                        cache.publish(
                            key,
                            if key % 2 == 0 {
                                CachedVerdict::Sat
                            } else {
                                CachedVerdict::Unsat
                            },
                        );
                        assert!(cache.lookup(key).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.entries(), 4000);
        for key in 0..4000u64 {
            let want = if key % 2 == 0 {
                CachedVerdict::Sat
            } else {
                CachedVerdict::Unsat
            };
            assert_eq!(cache.lookup(key), Some(want));
        }
    }

    #[test]
    fn local_cache_implements_the_trait() {
        let c = LocalVerdictCache::new();
        assert_eq!(c.lookup(1), None);
        c.publish(1, CachedVerdict::Sat);
        assert_eq!(c.lookup(1), Some(CachedVerdict::Sat));
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn ucache_subset_matching_is_multiset_aware() {
        let c = UnsatCache::new(8);
        c.store_unsat(vec![3, 1]);
        // {1,3} ⊆ {1,2,3}: unsat.
        assert_eq!(c.lookup(&[1, 2, 3]), Some(UcAnswer::Unsat));
        // Exact match counts as subset.
        assert_eq!(c.lookup(&[1, 3]), Some(UcAnswer::Unsat));
        // {1,3} ⊄ {1,2}: no answer.
        assert_eq!(c.lookup(&[1, 2]), None);
        // Duplicates count: an entry needing two 1s does not match a
        // query with one.
        c.store_unsat(vec![7, 7]);
        assert_eq!(c.lookup(&[7, 8]), None);
        assert_eq!(c.lookup(&[7, 7, 8]), Some(UcAnswer::Unsat));
        let s = c.stats();
        assert_eq!(s.sub_hits, 3);
        assert_eq!(s.stores, 2);
    }

    #[test]
    fn ucache_superset_model_is_candidate_only() {
        let c = UnsatCache::new(8);
        c.store_sat(vec![10, 20, 30], Model::default());
        // Query {10,20} ⊆ entry {10,20,30}: candidate model returned.
        assert_eq!(c.lookup(&[10, 20]), Some(UcAnswer::Sat(Model::default())));
        // Query {10,40} ⊄ entry: nothing.
        assert_eq!(c.lookup(&[10, 40]), None);
        // Unsat subset match beats a sat superset candidate.
        c.store_unsat(vec![10]);
        assert_eq!(c.lookup(&[10, 20]), Some(UcAnswer::Unsat));
        let s = c.stats();
        assert_eq!(s.sup_candidates, 1);
        assert_eq!(s.sub_hits, 1);
    }

    #[test]
    fn ucache_bounds_and_dedup() {
        let c = UnsatCache::new(2);
        // Empty and too-wide entries are rejected.
        c.store_unsat(vec![]);
        c.store_unsat(vec![1; UnsatCache::MAX_WIDTH + 1]);
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().store_rejects, 2);
        // Duplicate multiset of the same kind is rejected...
        c.store_unsat(vec![5, 6]);
        c.store_unsat(vec![6, 5]);
        assert_eq!(c.stats().entries, 1);
        // ...but the same multiset with the other kind is a new entry.
        c.store_sat(vec![5, 6], Model::default());
        assert_eq!(c.stats().entries, 2);
        // FIFO eviction at capacity: the oldest entry leaves.
        c.store_unsat(vec![9]);
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(c.lookup(&[5, 6, 7]), None, "unsat {{5,6}} was evicted");
        assert_eq!(c.lookup(&[1, 9]), Some(UcAnswer::Unsat));
    }

    #[test]
    fn ucache_empty_query_answers_nothing() {
        let c = UnsatCache::new(4);
        c.store_sat(vec![1], Model::default());
        // ∅ is a subset of every sat entry, but an empty conjunction is
        // trivially sat and never reaches the cache; guard anyway.
        assert_eq!(c.lookup(&[]), None);
    }

    #[test]
    fn verdict_from_result_drops_unknown_and_models() {
        use crate::solve::Model;
        assert_eq!(
            CachedVerdict::from_result(&SatResult::Sat(Model::default())),
            Some(CachedVerdict::Sat)
        );
        assert_eq!(
            CachedVerdict::from_result(&SatResult::Unsat),
            Some(CachedVerdict::Unsat)
        );
        assert_eq!(CachedVerdict::from_result(&SatResult::Unknown), None);
    }
}
