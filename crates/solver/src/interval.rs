//! Closed integer intervals with saturating arithmetic.

use std::fmt;

/// A closed interval `[lo, hi]` over `i64`, or empty when `lo > hi`.
///
/// Arithmetic saturates at the `i64` bounds; the solver treats saturation
/// conservatively (it can only widen, never wrongly narrow, a domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

#[allow(clippy::should_implement_trait)] // interval ops are deliberate inherent methods
impl Interval {
    /// The full `i64` range.
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// A canonical empty interval.
    pub const EMPTY: Interval = Interval { lo: 1, hi: 0 };

    /// Creates `[lo, hi]`.
    pub fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    /// The singleton `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// True when the interval contains no values.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// True when the interval is a single value.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// True when `v` lies inside.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of values, saturating at `u64::MAX`.
    pub fn width(self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi as i128 - self.lo as i128 + 1).min(u64::MAX as i128) as u64
        }
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Smallest interval containing both.
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Interval sum.
    #[must_use]
    pub fn add(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// Interval difference.
    #[must_use]
    pub fn sub(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
        }
    }

    /// Interval negation.
    #[must_use]
    pub fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.hi.checked_neg().unwrap_or(i64::MAX),
            hi: self.lo.checked_neg().unwrap_or(i64::MAX),
        }
    }

    /// Interval product.
    #[must_use]
    pub fn mul(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let candidates = [
            sat_mul(self.lo, other.lo),
            sat_mul(self.lo, other.hi),
            sat_mul(self.hi, other.lo),
            sat_mul(self.hi, other.hi),
        ];
        Interval {
            lo: *candidates.iter().min().unwrap(),
            hi: *candidates.iter().max().unwrap(),
        }
    }

    /// Interval quotient (truncating division). Division by an interval
    /// containing 0 conservatively widens toward `TOP` over the nonzero
    /// part; division by exactly `[0,0]` yields `TOP` (the VM faults on
    /// it, so the branch is pruned elsewhere).
    #[must_use]
    pub fn div(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        // Split divisor into negative and positive parts, excluding zero.
        let mut result = Interval::EMPTY;
        let neg_part = other.intersect(Interval::new(i64::MIN, -1));
        let pos_part = other.intersect(Interval::new(1, i64::MAX));
        for part in [neg_part, pos_part] {
            if part.is_empty() {
                continue;
            }
            let candidates = [
                div64(self.lo, part.lo),
                div64(self.lo, part.hi),
                div64(self.hi, part.lo),
                div64(self.hi, part.hi),
            ];
            let q = Interval {
                lo: *candidates.iter().min().unwrap(),
                hi: *candidates.iter().max().unwrap(),
            };
            result = result.hull(q);
        }
        if result.is_empty() {
            // Divisor was exactly [0,0].
            Interval::TOP
        } else {
            result
        }
    }

    /// Interval remainder (truncating `%`). Conservative: bounds the
    /// magnitude by `|divisor| - 1` and by the dividend's own range.
    #[must_use]
    pub fn rem(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let max_abs_div = other.lo.unsigned_abs().max(other.hi.unsigned_abs());
        if max_abs_div == 0 {
            return Interval::TOP;
        }
        let bound = (max_abs_div - 1).min(i64::MAX as u64) as i64;
        let mag = Interval::new(-bound, bound);
        // Remainder sign follows the dividend.
        let mut out = mag;
        if self.lo >= 0 {
            out = out.intersect(Interval::new(0, i64::MAX));
        }
        if self.hi <= 0 {
            out = out.intersect(Interval::new(i64::MIN, 0));
        }
        out.intersect(Interval::new(
            self.lo.min(0).max(-bound),
            self.hi.max(0).min(bound),
        ))
    }
}

fn sat_mul(a: i64, b: i64) -> i64 {
    a.saturating_mul(b)
}

fn div64(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    if a == i64::MIN && b == -1 {
        i64::MAX
    } else {
        a / b
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("[]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = Interval::new(1, 3);
        let b = Interval::new(10, 20);
        assert_eq!(a.add(b), Interval::new(11, 23));
        assert_eq!(b.sub(a), Interval::new(7, 19));
        assert_eq!(a.neg(), Interval::new(-3, -1));
        assert_eq!(a.mul(b), Interval::new(10, 60));
    }

    #[test]
    fn mul_with_negative_ranges() {
        let a = Interval::new(-2, 3);
        let b = Interval::new(-5, 4);
        assert_eq!(a.mul(b), Interval::new(-15, 12));
    }

    #[test]
    fn div_positive_divisor() {
        let a = Interval::new(10, 21);
        let b = Interval::new(2, 3);
        let q = a.div(b);
        // All concrete quotients must be inside.
        for x in 10..=21 {
            for y in 2..=3 {
                assert!(q.contains(x / y), "{q} missing {}", x / y);
            }
        }
    }

    #[test]
    fn div_straddling_zero_is_conservative() {
        let a = Interval::new(10, 20);
        let b = Interval::new(-2, 2);
        let q = a.div(b);
        for y in [-2i64, -1, 1, 2] {
            for x in 10..=20 {
                assert!(q.contains(x / y));
            }
        }
    }

    #[test]
    fn rem_bounds_magnitude() {
        let a = Interval::new(0, 100);
        let b = Interval::point(7);
        let r = a.rem(b);
        for x in 0..=100 {
            assert!(r.contains(x % 7));
        }
        assert!(r.hi <= 6);
        assert!(r.lo >= 0);
    }

    #[test]
    fn empty_propagates() {
        assert!(Interval::EMPTY.add(Interval::point(3)).is_empty());
        assert!(Interval::point(1).intersect(Interval::point(2)).is_empty());
    }

    #[test]
    fn width_and_hull() {
        assert_eq!(Interval::new(3, 7).width(), 5);
        assert_eq!(Interval::EMPTY.width(), 0);
        assert_eq!(
            Interval::new(1, 2).hull(Interval::new(8, 9)),
            Interval::new(1, 9)
        );
        assert_eq!(Interval::TOP.width(), u64::MAX);
    }

    #[test]
    fn saturation_at_bounds() {
        let big = Interval::new(i64::MAX - 1, i64::MAX);
        let sum = big.add(big);
        assert_eq!(sum.hi, i64::MAX);
        assert!(sum.lo <= sum.hi);
    }
}
