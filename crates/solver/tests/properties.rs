//! Property-based tests for the constraint solver: soundness of models,
//! agreement with brute force on small domains, and interval arithmetic
//! containment laws.

use proptest::prelude::*;
use solver::{CmpOp, Constraint, Interval, SatResult, Solver, Term, TermCtx, TermId};

// ---------------------------------------------------------------------
// Interval arithmetic: every concrete result is contained in the
// interval result (the fundamental soundness property of the domain).
// ---------------------------------------------------------------------

fn small_interval() -> impl Strategy<Value = Interval> {
    (-200i64..=200, 0i64..=80).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

proptest! {
    #[test]
    fn interval_add_contains_concrete(a in small_interval(), b in small_interval(),
                                      x in 0i64..=80, y in 0i64..=80) {
        let (xa, yb) = (a.lo + x.min(a.hi - a.lo), b.lo + y.min(b.hi - b.lo));
        prop_assert!(a.add(b).contains(xa + yb));
        prop_assert!(a.sub(b).contains(xa - yb));
        prop_assert!(a.mul(b).contains(xa * yb));
        prop_assert!(a.neg().contains(-xa));
        if yb != 0 {
            prop_assert!(a.div(b).contains(xa / yb), "{a} / {b} missing {}", xa / yb);
            prop_assert!(a.rem(b).contains(xa % yb), "{a} % {b} missing {}", xa % yb);
        }
    }

    #[test]
    fn interval_intersect_hull_laws(a in small_interval(), b in small_interval()) {
        let meet = a.intersect(b);
        let join = a.hull(b);
        if !meet.is_empty() {
            prop_assert!(meet.lo >= a.lo && meet.lo >= b.lo);
            prop_assert!(meet.hi <= a.hi && meet.hi <= b.hi);
        }
        prop_assert!(join.lo <= a.lo && join.hi >= a.hi);
        prop_assert!(join.lo <= b.lo && join.hi >= b.hi);
        // Idempotence.
        prop_assert_eq!(a.intersect(a), a);
        prop_assert_eq!(a.hull(a), a);
    }
}

// ---------------------------------------------------------------------
// Solver vs brute force on tiny domains.
// ---------------------------------------------------------------------

/// A random conjunction over two small-domain variables, built from
/// terms the symbolic executor actually emits.
#[derive(Debug, Clone)]
struct Problem {
    /// (op, lhs choice, rhs choice, const) encoded atoms.
    atoms: Vec<(u8, u8, i64)>,
}

fn problem() -> impl Strategy<Value = Problem> {
    proptest::collection::vec((0u8..4, 0u8..6, -20i64..=20), 1..6)
        .prop_map(|atoms| Problem { atoms })
}

/// Builds the constraint system over ctx with vars x, y in [-8, 8].
fn build(ctx: &mut TermCtx, p: &Problem) -> (TermId, TermId, Vec<Constraint>) {
    let x = ctx.new_var("x", -8, 8);
    let y = ctx.new_var("y", -8, 8);
    let cs = p
        .atoms
        .iter()
        .map(|&(op, shape, k)| {
            let c = ctx.int(k);
            let lhs = match shape {
                0 => x,
                1 => y,
                2 => ctx.add(x, y),
                3 => ctx.sub(x, y),
                4 => {
                    let two = ctx.int(2);
                    ctx.mul(x, two)
                }
                _ => {
                    let three = ctx.int(3);
                    ctx.mul(y, three)
                }
            };
            let op = match op {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                _ => CmpOp::Le,
            };
            Constraint::new(op, lhs, c)
        })
        .collect();
    (x, y, cs)
}

fn brute_force_sat(p: &Problem) -> bool {
    for x in -8i64..=8 {
        for y in -8i64..=8 {
            let ok = p.atoms.iter().all(|&(op, shape, k)| {
                let lhs = match shape {
                    0 => x,
                    1 => y,
                    2 => x + y,
                    3 => x - y,
                    4 => 2 * x,
                    _ => 3 * y,
                };
                match op {
                    0 => lhs == k,
                    1 => lhs != k,
                    2 => lhs < k,
                    _ => lhs <= k,
                }
            });
            if ok {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn solver_agrees_with_brute_force(p in problem()) {
        let mut ctx = TermCtx::new();
        let (x, y, cs) = build(&mut ctx, &p);
        let mut solver = Solver::default();
        match solver.check(&ctx, &cs) {
            SatResult::Sat(model) => {
                prop_assert!(brute_force_sat(&p), "solver sat, brute force unsat: {p:?}");
                // The model must actually satisfy the constraints.
                prop_assert!(model.satisfies(&ctx, &cs));
                let vx = model.value_of(x, &ctx).unwrap();
                let vy = model.value_of(y, &ctx).unwrap();
                prop_assert!((-8..=8).contains(&vx), "x={vx} out of domain");
                prop_assert!((-8..=8).contains(&vy), "y={vy} out of domain");
            }
            SatResult::Unsat => {
                prop_assert!(!brute_force_sat(&p), "solver unsat, brute force sat: {p:?}");
            }
            SatResult::Unknown => {
                // Allowed, but should not happen on 17x17 domains.
                prop_assert!(false, "unknown on a tiny domain: {p:?}");
            }
        }
    }

    #[test]
    fn negation_flips_satisfying_assignments(op in 0u8..4, k in -10i64..=10) {
        let mut ctx = TermCtx::new();
        let x = ctx.new_var("x", -12, 12);
        let c = ctx.int(k);
        let op = match op { 0 => CmpOp::Eq, 1 => CmpOp::Ne, 2 => CmpOp::Lt, _ => CmpOp::Le };
        let atom = Constraint::new(op, x, c);
        let neg = atom.negate();
        // For every concrete x exactly one of atom/neg holds.
        for v in -12i64..=12 {
            let holds = op.concrete(v, k);
            let neg_holds = neg.op.concrete(
                if neg.lhs == x { v } else { k },
                if neg.rhs == x { v } else { k },
            );
            prop_assert!(holds != neg_holds, "x={v}, k={k}, op={op:?}");
        }
    }

    #[test]
    fn constant_folding_matches_wrapping_semantics(a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (a as i64, b as i64);
        let mut ctx = TermCtx::new();
        let ta = ctx.int(a);
        let tb = ctx.int(b);
        let sum = ctx.add(ta, tb);
        prop_assert_eq!(ctx.as_const(sum), Some(a.wrapping_add(b)));
        let diff = ctx.sub(ta, tb);
        prop_assert_eq!(ctx.as_const(diff), Some(a.wrapping_sub(b)));
        let prod = ctx.mul(ta, tb);
        prop_assert_eq!(ctx.as_const(prod), Some(a.wrapping_mul(b)));
        if b != 0 {
            let q = ctx.div(ta, tb);
            let expected = if a == i64::MIN && b == -1 { i64::MIN } else { a / b };
            prop_assert_eq!(ctx.as_const(q), Some(expected));
        }
    }

    #[test]
    fn interning_is_stable(vals in proptest::collection::vec(-50i64..=50, 1..20)) {
        let mut ctx = TermCtx::new();
        let ids: Vec<TermId> = vals.iter().map(|&v| ctx.int(v)).collect();
        let again: Vec<TermId> = vals.iter().map(|&v| ctx.int(v)).collect();
        prop_assert_eq!(ids, again);
        for &v in &vals {
            let id = ctx.int(v);
            prop_assert_eq!(ctx.term(id), Term::Const(v));
        }
    }
}
