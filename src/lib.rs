//! StatSym — facade crate re-exporting the full reproduction workspace.
//!
//! See the individual crates for details:
//! [`minic`] (language), [`sir`] (IR), [`concrete`] (VM + monitor),
//! [`solver`] (constraints), [`symex`] (symbolic engine),
//! [`statsym_core`] (the paper's contribution), [`benchapps`] (targets).

pub use benchapps;
pub use concrete;
pub use minic;
pub use sir;
pub use solver;
pub use statsym_core as core;
pub use statsym_telemetry as telemetry;
pub use symex;
