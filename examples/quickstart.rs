//! Quickstart: write a MiniC program, run it concretely, then let the
//! symbolic engine find the lurking buffer overflow and produce a
//! concrete crashing input.
//!
//! Run with: `cargo run --example quickstart`

use statsym::concrete::{InputValue, Vm, VmConfig};
use statsym::symex::{Engine, EngineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny vulnerable program: the copy loop never checks the
    // destination capacity.
    let source = r#"
        fn copy_name(name: str) {
            let buffer: buf[8];
            let i: int = 0;
            while (char_at(name, i) != 0) {
                buf_set(buffer, i, char_at(name, i));
                i = i + 1;
            }
            buf_set(buffer, i, 0);
        }
        fn main() {
            let name: str = input_str("name", 16);
            copy_name(name);
        }
    "#;
    let program = statsym::minic::parse_program(source)?;
    let module = statsym::sir::lower(&program)?;

    // 1. Concrete execution: short names are fine.
    let vm = Vm::new(&module, VmConfig::default());
    let ok = vm.run(
        &[("name".into(), InputValue::text("short"))]
            .into_iter()
            .collect(),
    )?;
    println!("concrete run with \"short\": {:?}", ok.outcome);

    // 2. Symbolic execution: the engine discovers the overflow and
    //    generates a triggering input from the solver model.
    let mut engine = Engine::new(&module, EngineConfig::default());
    let report = engine.run();
    let found = report.outcome.found().expect("engine finds the overflow");
    println!("fault: {}", found.fault);
    println!(
        "trace: {:?}",
        found
            .trace
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!("triggering input: {:?}", found.inputs.get("name"));

    // 3. Replay the generated input to confirm it crashes for real.
    let replay = vm.run(&found.inputs)?;
    println!("replay outcome: {:?}", replay.outcome);
    assert!(replay.outcome.is_fault());
    Ok(())
}
