//! Structured telemetry end to end: run the full StatSym pipeline with
//! a JSONL trace recorder on the deterministic step clock, then parse
//! the trace back and render the run report (phase spans, lifecycle
//! counters, solver histograms).
//!
//! Run with: `cargo run --example trace_run`

use statsym::concrete::run_logged_traced;
use statsym::core::pipeline::StatSym;
use statsym::telemetry::{parse_trace, Clock, FileRecorder, TraceSummary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The miniature polymorph from the pipeline tests: option-handling
    // noise plus an unchecked copy into a 6-byte stack buffer.
    let source = r#"
        global track: int = 0;
        fn helper_a(x: int) -> int { track = track + 1; return x + 1; }
        fn helper_b(x: int) -> int { track = track + 2; return x * 2; }
        fn convert(s: str) {
            let b: buf[6];
            let i: int = 0;
            while (char_at(s, i) != 0) {
                buf_set(b, i, char_at(s, i));
                i = i + 1;
            }
        }
        fn main() {
            let m: int = input_int("mode");
            let s: str = input_str("name", 12);
            if (m > 0) { print(helper_a(m)); } else { print(helper_b(m)); }
            convert(s);
        }
    "#;
    let module = statsym::sir::lower(&statsym::minic::parse_program(source)?)?;

    // Deterministic handcrafted corpus: short names succeed, long names
    // overflow. Sampling rate 1.0 keeps every record.
    let mut logs = Vec::new();
    for len in [0usize, 2, 4, 6, 7, 9, 11, 12] {
        let name: Vec<u8> = std::iter::repeat_n(b'a', len).collect();
        let inputs = [
            (
                "mode".to_string(),
                statsym::concrete::InputValue::Int(len as i64 - 5),
            ),
            ("name".to_string(), statsym::concrete::InputValue::Str(name)),
        ]
        .into_iter()
        .collect();
        let run = run_logged_traced(
            &module,
            &inputs,
            1.0,
            0,
            statsym::concrete::VmConfig::default(),
            &statsym::telemetry::NOOP,
        )?;
        logs.push(run.log);
    }

    // Trace the whole pipeline on the step-count clock: a fixed corpus
    // yields a byte-reproducible trace file.
    let path = std::env::temp_dir().join("statsym_trace_run.jsonl");
    let rec = FileRecorder::create(&path, Clock::steps())?;
    let statsym = StatSym::default();
    let report = statsym.run_traced(&module, &logs, &rec);
    rec.finish()?;

    let found = report.found.as_ref().expect("pipeline finds the overflow");
    println!("fault: {}", found.fault);
    println!("candidate used: {:?}", report.candidate_used);
    println!("trace file: {}\n", path.display());

    // Round trip: parse the JSONL trace and render the run report.
    let text = std::fs::read_to_string(&path)?;
    let events = parse_trace(&text)?;
    let summary = TraceSummary::from_events(&events);
    println!("{}", summary.render());

    // The trace reconciles with the in-process report.
    let explored: u64 = report.attempts.iter().map(|a| a.stats.paths_explored).sum();
    assert_eq!(summary.counter("symex.paths_explored"), explored);
    Ok(())
}
