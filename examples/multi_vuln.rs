//! Iterative discovery of multiple vulnerabilities (paper §III-C): when
//! a program hosts several bugs, StatSym clusters faulty logs by crash
//! site, finds one vulnerable path, eliminates it, and repeats.
//!
//! Run with: `cargo run --release --example multi_vuln`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use statsym::concrete::{run_logged, InputMap, InputValue};
use statsym::core::pipeline::StatSym;

const SRC: &str = r#"
    global requests: int = 0;
    fn parse_header(h: str) {
        let b: buf[6];
        let i: int = 0;
        while (char_at(h, i) != 0) { buf_set(b, i, char_at(h, i)); i = i + 1; }
        buf_set(b, i, 0);                       // bug 1: overflow at len >= 6
    }
    fn set_timeout(t: int) {
        requests = requests + 1;
        assert(t < 300);                        // bug 2: unchecked timeout
    }
    fn main() {
        let t: int = input_int("timeout");
        let h: str = input_str("header", 12);
        set_timeout(t);
        parse_header(h);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = statsym::sir::lower(&statsym::minic::parse_program(SRC)?)?;

    // Field telemetry triggering both bugs (and clean runs).
    let mut rng = StdRng::seed_from_u64(3);
    let mut logs = Vec::new();
    for i in 0..150 {
        let (timeout, hlen) = match i % 3 {
            0 => (rng.random_range(0..300), rng.random_range(0..=5)), // clean
            1 => (rng.random_range(0..300), rng.random_range(6..=12)), // bug 1
            _ => (rng.random_range(300..900), rng.random_range(0..=5)), // bug 2
        };
        let header: Vec<u8> = (0..hlen).map(|_| rng.random_range(b'a'..=b'z')).collect();
        let inputs: InputMap = [
            ("timeout".to_string(), InputValue::Int(timeout)),
            ("header".to_string(), InputValue::Str(header)),
        ]
        .into_iter()
        .collect();
        logs.push(run_logged(&module, &inputs, 0.8, 3 ^ i)?.log);
    }

    let report = StatSym::default().run_iterative(&module, &logs, 4);
    println!(
        "discovered {} distinct vulnerable paths:",
        report.found.len()
    );
    for (i, f) in report.found.iter().enumerate() {
        println!("\n#{}: {}", i + 1, f.fault);
        println!(
            "   trace: {}",
            f.trace
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" -> ")
        );
        println!("   input: {:?}", f.inputs);
        // Replay each one.
        let vm = statsym::concrete::Vm::new(&module, Default::default());
        let replay = vm.run(&f.inputs)?;
        assert_eq!(replay.outcome.fault().unwrap().func, f.fault.func);
        println!("   replay: reproduced in `{}`", f.fault.func);
    }
    assert_eq!(report.found.len(), 2);
    Ok(())
}
