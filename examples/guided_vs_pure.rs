//! Statistics-guided vs pure symbolic execution on the CTree benchmark:
//! the pure engine drowns in per-character forks and exhausts its memory
//! budget, while the guided engine walks straight to the overflow.
//!
//! Run with: `cargo run --release --example guided_vs_pure`

use statsym::benchapps::{ctree, generate_corpus, CorpusSpec};
use statsym::core::pipeline::StatSym;
use statsym::symex::{Engine, EngineConfig, RunOutcome, SchedulerKind};

fn main() {
    let app = ctree();

    // Pure baseline: BFS with a 64 MiB modeled memory budget (see
    // DESIGN.md for the scaling argument).
    let mut pure = Engine::new(
        &app.module,
        EngineConfig {
            scheduler: SchedulerKind::Bfs,
            memory_budget: 64 << 20,
            ..EngineConfig::default()
        },
    );
    for (name, value) in &app.pins {
        pure.pin_input(name.clone(), value.clone());
    }
    let pure_report = pure.run();
    match &pure_report.outcome {
        RunOutcome::Found(f) => println!("pure: found {}", f.fault),
        RunOutcome::Exhausted(r) => println!(
            "pure: FAILED ({r}) after {} paths, peak modeled memory {} MiB",
            pure_report.stats.paths_explored,
            pure_report.stats.peak_memory >> 20
        ),
        RunOutcome::Completed => println!("pure: completed without a fault"),
    }

    // StatSym: statistics from 200 sampled logs guide the same engine.
    let logs = generate_corpus(
        &app,
        CorpusSpec {
            n_correct: 100,
            n_faulty: 100,
            sampling_rate: 0.3,
            seed: 1,
        },
    );
    let guided = StatSym::default().run(&app.module, &logs);
    let found = guided.found.as_ref().expect("guided finds the fault");
    println!(
        "guided: found {} after {} paths in {:.3}s",
        found.fault,
        guided.total_paths_explored(),
        guided.total_time().as_secs_f64()
    );
}
