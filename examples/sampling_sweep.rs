//! Sensitivity of StatSym to the monitor's sampling rate (the paper's
//! Figure 10): lower rates mean cheaper logging but noisier statistics.
//!
//! Run with: `cargo run --release --example sampling_sweep`

use statsym::benchapps::{ctree, generate_corpus, CorpusSpec};
use statsym::core::pipeline::StatSym;

fn main() {
    let app = ctree();
    println!(
        "{:>9}  {:>9}  {:>10}  {:>7}  {:>6}",
        "sampling", "stat(ms)", "symex(ms)", "paths", "found"
    );
    for pct in [20, 40, 60, 80, 100] {
        let logs = generate_corpus(
            &app,
            CorpusSpec {
                n_correct: 100,
                n_faulty: 100,
                sampling_rate: pct as f64 / 100.0,
                seed: 7,
            },
        );
        let report = StatSym::default().run(&app.module, &logs);
        println!(
            "{:>8}%  {:>9.2}  {:>10.2}  {:>7}  {:>6}",
            pct,
            report.analysis.analysis_time.as_secs_f64() * 1e3,
            report.symex_time.as_secs_f64() * 1e3,
            report.total_paths_explored(),
            report.found.is_some()
        );
    }
}
