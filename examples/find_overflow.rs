//! The full StatSym pipeline on the polymorph benchmark: collect
//! sampled logs from random runs, build predicates and candidate paths,
//! then verify the vulnerable path with guided symbolic execution.
//!
//! Run with: `cargo run --release --example find_overflow`

use statsym::benchapps::{generate_corpus, polymorph, CorpusSpec};
use statsym::core::pipeline::StatSym;

fn main() {
    let app = polymorph();
    println!("target: {} — {}", app.name, app.description);

    // Emulate field telemetry: 100 correct + 100 faulty runs, with the
    // monitor keeping only 30% of records (the paper's partial logging).
    let logs = generate_corpus(
        &app,
        CorpusSpec {
            n_correct: 100,
            n_faulty: 100,
            sampling_rate: 0.3,
            seed: 42,
        },
    );
    println!("collected {} sampled logs", logs.len());

    let statsym = StatSym::default();
    let report = statsym.run(&app.module, &logs);

    println!("\ntop predicates:");
    for p in report.analysis.predicates.top(5) {
        println!("  {} @ {}  (score {:.2})", p.render(), p.loc, p.score);
    }
    println!("\ndetours: {}", report.analysis.n_detours());
    println!("candidate paths: {}", report.analysis.n_candidates());

    let found = report.found.as_ref().expect("StatSym finds the overflow");
    println!(
        "\nvulnerable path found via candidate #{}:",
        report.candidate_used.unwrap()
    );
    for loc in &found.trace {
        println!("  {loc}");
    }
    println!("fault: {}", found.fault);
    println!("triggering input: {:?}", found.inputs.get("file"));
    println!(
        "paths explored: {} (statistical analysis {:.3}s, symbolic execution {:.3}s)",
        report.total_paths_explored(),
        report.analysis.analysis_time.as_secs_f64(),
        report.symex_time.as_secs_f64()
    );

    // Confirm the generated input crashes the real program.
    let vm = statsym::concrete::Vm::new(&app.module, Default::default());
    let replay = vm.run(&found.inputs).unwrap();
    assert!(
        replay.outcome.is_fault(),
        "generated input must reproduce the crash"
    );
    println!("replay: fault reproduced");
}
